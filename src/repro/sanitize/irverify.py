"""Static well-formedness verifier for the JIT's SSA IR.

The LLVM-style pass verifier for :mod:`repro.jit`: after every pipeline
phase (``run_pipeline(verify=True)``) the whole graph is re-checked
against the IR contract, so a phase that corrupts the graph is caught at
transform time — attributed to the offending phase — instead of
surfacing later as a fingerprint diff between engines.

Checks, in order:

- **structure**: entry block present, every block terminated with a
  well-shaped terminator whose targets are graph blocks, predecessor
  lists mutually consistent with successor edges, node ``.block``
  back-references accurate, no node placed in two blocks;
- **φ-discipline**: ``phi`` nodes live in ``block.phis`` with exactly
  one input per predecessor;
- **arity/kind**: every op has the operand count the graph builder
  defines for it (guards by ``GuardInfo.test``); guard payloads are
  :class:`GuardInfo`, call sites carry a callsite
  :class:`FrameState` in ``node.value``;
- **def-before-use**: along dominator order (same-block program order,
  cross-block dominance via :func:`repro.jit.loops.compute_dominators`)
  for operands, φ inputs (against the matching predecessor), branch
  conditions, return values, and every framestate value — including
  :class:`VirtualObjectState` rematerialization recipes left by escape
  analysis, which is what "allocations must not sink past escaping
  uses" reduces to in SSA form;
- **effect placement**: effectful/trapping/allocating nodes must be
  scheduled in a block (only ``const``/``param`` may float);
- **monitor balance**: a forward depth analysis over the IR CFG —
  coarsening tags move *runtime* lock traffic but never change the
  static enter/exit pairing, and ``monitorexit_if_held`` drains are
  depth-neutral.

Every violation is a :class:`repro.sanitize.reports.StaticIssue` with
``pass_name="irverify"``, so the findings serialize through the same
canonical JSON as the bytecode-level passes.
"""

from __future__ import annotations

import gc
from itertools import chain

from repro.errors import CompileError
from repro.jit.ir import (
    ALLOC_OPS,
    EFFECT_OPS,
    FrameState,
    GuardInfo,
    Node,
    TRAPPING_OPS,
    VirtualObjectState,
)
from repro.sanitize.reports import StaticIssue

__all__ = ["IRVerifyError", "verify_graph", "IR_ARITY", "GUARD_ARITY"]


class IRVerifyError(CompileError):
    """A phase left the IR in a state that violates the contract.

    Unlike an ordinary :class:`CompileError` — which the JIT treats as a
    bailout and silently falls back to the interpreter — a verification
    failure is never swallowed: a miscompile that *would* have been
    masked by the fallback is exactly what the verifier exists to catch.
    ``phase`` names the pipeline phase after which the first broken
    invariant was observed.
    """

    def __init__(self, method: str, phase: str, issues: list[StaticIssue]):
        self.method = method
        self.phase = phase
        self.issues = list(issues)
        first = issues[0].message if issues else "unknown"
        super().__init__(
            f"{method}: IR verification failed after phase "
            f"'{phase}' ({len(issues)} issue(s)); first: {first}")


# Exact operand counts per op, as emitted by the graph builder and
# preserved by every phase.  ``None`` marks variable-arity ops (calls).
IR_ARITY: dict[str, int | None] = {
    "param": 0, "const": 0,
    "add": 2, "sub": 2, "mul": 2, "div": 2, "rem": 2,
    "shl": 2, "shr": 2, "and": 2, "or": 2, "xor": 2, "cmp": 2,
    "neg": 1, "not": 1, "i2d": 1, "d2i": 1, "cmpz": 1,
    "new": 0, "newarray": 1, "arraylen": 1,
    "getfield": 1, "putfield": 2, "getstatic": 0, "putstatic": 1,
    "aload": 2, "astore": 3,
    "instanceof": 1, "checkcast": 1,
    "monitorenter": 1, "monitorexit": 1, "monitorexit_if_held": 1,
    "cas": 3, "atomicget": 1, "atomicadd": 2,
    "park": 0, "unpark": 1, "wait": 1, "notify": 1, "notifyall": 1,
    "invokestatic": None, "invokespecial": None, "invokevirtual": None,
    "invokedirect": None, "invokedynamic": None, "invokehandle": None,
    "guard": None,   # arity depends on GuardInfo.test, see GUARD_ARITY
    "phi": None,     # arity == len(block.preds), checked structurally
}

#: Operand counts for ``guard`` nodes, keyed by ``GuardInfo.test``.
GUARD_ARITY = {"nonnull": 1, "bounds": 2, "bounds_range": 3, "type": 1}

# Call ops whose ``value`` must be the callsite FrameState (deopt and
# virtual-frame inlining both rebuild interpreter frames from it).
_STATEFUL_INVOKES = frozenset({
    "invokestatic", "invokespecial", "invokevirtual", "invokedirect",
    "invokehandle",
})

# Ops that may legally float outside any block (lowering inlines them).
_FLOATING_OPS = frozenset({"const", "param"})

# Every op that must be anchored in a block's node list to have a
# defined execution order.
_ANCHORED_OPS = EFFECT_OPS | TRAPPING_OPS | ALLOC_OPS


def verify_graph(graph, *, phase: str = "?") -> list[StaticIssue]:
    """Check ``graph`` against the IR contract; return all violations."""
    # The verifier is an allocation burst (location maps, dominator
    # intervals, analysis facts) of objects that are all dead by return.
    # Left to the collector, the burst trips the gen-0 threshold dozens
    # of times per compile, and every triggered collection rescans the
    # VM's young heap — most of verify_ir's measured overhead.  Suspend
    # collection for the burst; the next natural collection sweeps the
    # whole burst in one pass.
    enabled = gc.isenabled()
    if enabled:
        gc.disable()
    try:
        return _Verifier(graph, phase).run()
    finally:
        if enabled:
            gc.enable()


class _Verifier:
    def __init__(self, graph, phase: str) -> None:
        self.graph = graph
        self.phase = phase
        self.method = getattr(graph.method, "qualified", str(graph.method))
        self.issues: list[StaticIssue] = []
        # node id -> (block, index); φ-nodes get index -1 (they execute
        # conceptually at block entry, before every scheduled node).
        self.loc: dict[int, tuple] = {}
        self.block_ids: set[int] = set()
        self.idom: dict = {}
        self.tin: dict[int, int] = {}
        self.tout: dict[int, int] = {}
        self.order: list = []

    # ------------------------------------------------------------------
    def issue(self, message: str, *, pc: int = -1, severity: str = "error",
              line: int = 0) -> None:
        self.issues.append(StaticIssue(
            pass_name="irverify", severity=severity, method=self.method,
            pc=pc, line=line, message=f"[{self.phase}] {message}"))

    # ------------------------------------------------------------------
    def run(self) -> list[StaticIssue]:
        graph = self.graph
        if graph.entry is None or graph.entry not in graph.blocks:
            self.issue("entry block missing from graph block list")
            return self.issues
        self.block_ids = {b.id for b in graph.blocks}
        self._check_structure()
        if self.issues:
            # Dominators are only meaningful over a structurally sound
            # CFG; stop at the first layer that is broken.
            return self.issues
        from repro.jit.loops import compute_dominators
        self.order = graph.reachable_blocks()
        self.idom = compute_dominators(graph)
        # Euler intervals over the dominator tree: ``a`` dominates ``b``
        # iff ``tin[a] <= tin[b] and tout[b] <= tout[a]``.  Def-before-use
        # makes one dominance query per operand of every node and this
        # verifier runs after every phase of every compile, so queries
        # must be O(1) integer compares — not idom-chain walks, and not
        # per-block dominator sets (whose garbage stalls the run under
        # collector pressure).
        children: dict[int, list] = {}
        for block in self.order:
            parent = self.idom.get(block.id)
            if parent is not None and parent is not block:
                children.setdefault(parent.id, []).append(block)
        tin, tout = self.tin, self.tout
        timer = 0
        stack: list[tuple] = [(graph.entry, False)]
        while stack:
            block, done = stack.pop()
            if done:
                tout[block.id] = timer
            else:
                tin[block.id] = timer
                stack.append((block, True))
                for child in children.get(block.id, ()):
                    stack.append((child, False))
            timer += 1
        self._check_nodes()
        self._check_monitor_balance()
        return self.issues

    # ------------------------------------------------------------------
    # Layer 1: CFG structure.
    # ------------------------------------------------------------------
    def _check_structure(self) -> None:
        graph = self.graph
        owner: dict[int, object] = {}
        if len(self.block_ids) != len(graph.blocks):
            self.issue("graph block list contains duplicate blocks")
        for block in graph.blocks:
            t = block.terminator
            if t is None:
                self.issue(f"block B{block.id} has no terminator",
                           pc=block.bc_pc)
                continue
            if t[0] == "jump":
                targets = [t[1]]
            elif t[0] == "branch":
                targets = [t[2], t[3]]
                if not isinstance(t[1], Node):
                    self.issue(f"B{block.id} branch condition is not a "
                               f"Node: {t[1]!r}", pc=block.bc_pc)
            elif t[0] == "return":
                targets = []
                if t[1] is not None and not isinstance(t[1], Node):
                    self.issue(f"B{block.id} return value is not a "
                               f"Node: {t[1]!r}", pc=block.bc_pc)
            else:
                self.issue(f"B{block.id} has unknown terminator kind "
                           f"{t[0]!r}", pc=block.bc_pc)
                continue
            for target in targets:
                if getattr(target, "id", None) not in self.block_ids:
                    self.issue(f"B{block.id} targets block {target!r} "
                               "that is not in the graph", pc=block.bc_pc)
            for node in block.phis:
                if node.op != "phi":
                    self.issue(f"non-phi node n{node.id}:{node.op} in "
                               f"B{block.id}.phis", pc=block.bc_pc)
            for node in list(block.phis) + list(block.nodes):
                if node.op == "phi" and node not in block.phis:
                    self.issue(f"phi n{node.id} scheduled in "
                               f"B{block.id}.nodes", pc=block.bc_pc)
                if node.block is not block:
                    self.issue(
                        f"n{node.id}:{node.op} in B{block.id} has stale "
                        f".block back-reference "
                        f"{'B%d' % node.block.id if node.block else None}",
                        pc=block.bc_pc)
                prev = owner.get(node.id)
                if prev is not None:
                    self.issue(f"n{node.id}:{node.op} scheduled in both "
                               f"B{prev.id} and B{block.id}", pc=block.bc_pc)
                owner[node.id] = block
        if self.issues:
            return
        # Predecessor lists must agree (as multisets) with the edges the
        # terminators actually define; φ arity must match pred count.
        expected: dict[int, list[int]] = {b.id: [] for b in graph.blocks}
        for block in graph.blocks:
            for succ in block.successors:
                if succ.id in expected:
                    expected[succ.id].append(block.id)
        for block in graph.blocks:
            have = sorted(p.id for p in block.preds)
            want = sorted(expected[block.id])
            if have != want:
                self.issue(
                    f"B{block.id} predecessor list {have} does not match "
                    f"CFG edges {want}", pc=block.bc_pc)
                continue
            for pred in block.preds:
                if pred.id not in self.block_ids:
                    self.issue(f"B{block.id} has dangling predecessor "
                               f"B{pred.id}", pc=block.bc_pc)
            for phi in block.phis:
                if len(phi.inputs) != len(block.preds):
                    self.issue(
                        f"phi n{phi.id} in B{block.id} has "
                        f"{len(phi.inputs)} inputs for {len(block.preds)} "
                        "predecessors", pc=block.bc_pc)
        # Location map for the dataflow layer (built only once the
        # structure is sound enough for it to be unambiguous).
        for block in graph.blocks:
            for phi in block.phis:
                self.loc[phi.id] = (block, -1)
            for index, node in enumerate(block.nodes):
                self.loc[node.id] = (block, index)

    # ------------------------------------------------------------------
    # Layer 2: per-node checks + def-before-use along dominator order.
    # ------------------------------------------------------------------
    def _defined_at(self, value: Node, block, index: int) -> bool:
        """True if ``value`` is available at (block, index)."""
        if value.op in _FLOATING_OPS:
            # Constants/params are inlined by lowering wherever used, so
            # scheduling position (if any) does not constrain their uses.
            return True
        where = self.loc.get(value.id)
        if where is None:
            return False
        def_block, def_index = where
        if def_block is block:
            return def_index < index
        ta = self.tin.get(def_block.id)
        tb = self.tin.get(block.id)
        if ta is None or tb is None:    # def or use in unreachable block
            return False
        return ta <= tb and self.tout[block.id] <= self.tout[def_block.id]

    def _check_use(self, value, block, index: int, what: str,
                   pc: int) -> None:
        if not isinstance(value, Node):
            self.issue(f"{what} is not a Node: {value!r}", pc=pc)
            return
        if value.id not in self.loc and value.op not in _FLOATING_OPS:
            self.issue(
                f"{what} uses n{value.id}:{value.op} which is not "
                "scheduled in any block (deleted or floating effect)",
                pc=pc)
            return
        if not self._defined_at(value, block, index):
            where = self.loc.get(value.id)
            at = f"B{where[0].id}" if where else "floating"
            self.issue(
                f"{what} uses n{value.id}:{value.op} (defined in {at}) "
                f"which does not dominate the use in B{block.id}", pc=pc)

    def _check_virtual(self, vos, block, index: int, what: str,
                       pc: int, depth: int) -> None:
        """Check a rematerialization recipe.  Field values are Nodes that
        must dominate the deopt point, or nested recipes (an object whose
        field held another scalar-replaced object) — lowering flattens
        the nesting and deopt rematerializes inner objects on demand."""
        if not isinstance(vos.class_name, str):
            self.issue(f"{what} virtual object has no class name", pc=pc)
        if depth > 16:
            self.issue(f"{what} virtual object nesting exceeds depth 16 "
                       "(cyclic recipe?)", pc=pc)
            return
        for fname, fnode in vos.field_values:
            label = f"{what} virtual {vos.class_name}.{fname}"
            if isinstance(fnode, VirtualObjectState):
                self._check_virtual(fnode, block, index, label, pc,
                                    depth + 1)
            else:
                self._check_use(fnode, block, index, label, pc)

    def _check_state(self, state, block, index: int, what: str,
                     pc: int) -> None:
        depth = 0
        while state is not None:
            if not isinstance(state, FrameState):
                self.issue(f"{what} carries non-FrameState {state!r}",
                           pc=pc)
                return
            for value in chain(state.locals, state.stack):
                if value is None:
                    continue
                if isinstance(value, VirtualObjectState):
                    self._check_virtual(value, block, index, what, pc, 0)
                    continue
                self._check_use(value, block, index, what, pc)
            state = state.caller
            depth += 1
            if depth > 64:
                self.issue(f"{what} caller chain exceeds depth 64 "
                           "(cyclic?)", pc=pc)
                return

    def _check_nodes(self) -> None:
        reachable = {b.id for b in self.order}
        for block in self.graph.blocks:
            if block.id not in reachable:
                # recompute_preds() drops unreachable blocks; one left
                # behind means a phase edited edges without renormalizing.
                self.issue(f"B{block.id} is unreachable from entry but "
                           "still in the block list", pc=block.bc_pc,
                           severity="warning")
                continue
            pc = block.bc_pc
            for phi in block.phis:
                if len(phi.inputs) != len(block.preds):
                    continue    # already reported structurally
                for pred, value in zip(block.preds, phi.inputs):
                    if isinstance(value, Node):
                        # The input must be available at the end of the
                        # matching predecessor (index past its last node).
                        self._check_use(
                            value, pred, len(pred.nodes),
                            f"phi n{phi.id} input from B{pred.id}", pc)
                    else:
                        self.issue(f"phi n{phi.id} input from "
                                   f"B{pred.id} is not a Node: {value!r}",
                                   pc=pc)
            # Fast path: a plain fixed-arity op whose operands all pass
            # the dominance check needs none of the diagnostic machinery
            # in _check_node — and that is nearly every node of every
            # graph at every checkpoint.
            loc = self.loc
            tin, tout = self.tin, self.tout
            tb = tin.get(block.id)
            toutb = tout.get(block.id)
            for index, node in enumerate(block.nodes):
                op = node.op
                arity = IR_ARITY.get(op, "unknown")
                inputs = node.inputs
                if (arity.__class__ is int and len(inputs) == arity
                        and tb is not None):
                    for operand in inputs:
                        if not isinstance(operand, Node):
                            break
                        if operand.op in _FLOATING_OPS:
                            continue
                        where = loc.get(operand.id)
                        if where is None:
                            break
                        def_block, def_index = where
                        if def_block is block:
                            if def_index < index:
                                continue
                            break
                        ta = tin.get(def_block.id)
                        if (ta is not None and ta <= tb
                                and toutb <= tout[def_block.id]):
                            continue
                        break
                    else:
                        continue
                self._check_node(node, block, index, pc)
            self._check_terminator(block)

    def _check_node(self, node: Node, block, index: int, pc: int) -> None:
        arity = IR_ARITY.get(node.op, "unknown")
        if arity == "unknown":
            self.issue(f"n{node.id} has unknown op {node.op!r}", pc=pc)
            return
        if node.op == "guard":
            info = node.extra
            if not isinstance(info, GuardInfo):
                self.issue(f"guard n{node.id} payload is not GuardInfo: "
                           f"{info!r}", pc=pc)
                return
            want = GUARD_ARITY.get(info.test)
            if want is None:
                self.issue(f"guard n{node.id} has unknown test "
                           f"{info.test!r}", pc=pc)
            elif len(node.inputs) != want:
                self.issue(
                    f"guard n{node.id} test {info.test!r} has "
                    f"{len(node.inputs)} operands, expected {want}", pc=pc)
            if info.test == "type" and not info.class_name:
                self.issue(f"type guard n{node.id} has no class_name",
                           pc=pc)
            if info.state is None:
                self.issue(
                    f"guard n{node.id} ({info.kind}/{info.test}) has no "
                    "deopt FrameState — failure would be unrecoverable",
                    pc=pc)
            else:
                self._check_state(info.state, block, index,
                                  f"guard n{node.id} state", pc)
        elif arity is not None and len(node.inputs) != arity:
            self.issue(
                f"n{node.id}:{node.op} has {len(node.inputs)} operands, "
                f"expected {arity}", pc=pc)
        if node.op in _STATEFUL_INVOKES:
            if not isinstance(node.value, FrameState):
                self.issue(
                    f"call n{node.id}:{node.op} has no callsite "
                    "FrameState in .value — deopt/inlining would have "
                    "no frame to rebuild", pc=pc)
            else:
                self._check_state(node.value, block, index,
                                  f"call n{node.id} state", pc)
        # Hot loop: one dominance query per operand of every node of
        # every phase of every compile.  The happy path must not build
        # the diagnostic label (or any other garbage) — fall through to
        # _check_use only when something is actually wrong.
        for i, operand in enumerate(node.inputs):
            if (isinstance(operand, Node)
                    and self._defined_at(operand, block, index)
                    and (operand.id in self.loc
                         or operand.op in _FLOATING_OPS)):
                continue
            self._check_use(operand, block, index,
                            f"n{node.id}:{node.op} operand {i}", pc)
            if isinstance(operand, Node) and operand.id not in self.loc \
                    and operand.op in _ANCHORED_OPS:
                self.issue(
                    f"effectful n{operand.id}:{operand.op} is used but "
                    "not scheduled in any block", pc=pc)

    def _check_terminator(self, block) -> None:
        t = block.terminator
        end = len(block.nodes)
        if t[0] == "branch":
            self._check_use(t[1], block, end,
                            f"B{block.id} branch condition", block.bc_pc)
        elif t[0] == "return" and t[1] is not None:
            self._check_use(t[1], block, end,
                            f"B{block.id} return value", block.bc_pc)

    # ------------------------------------------------------------------
    # Layer 3: monitor balance over the IR CFG.
    # ------------------------------------------------------------------
    def _check_monitor_balance(self) -> None:
        """Forward depth analysis: enter +1, exit -1, drains neutral.

        Lock coarsening retags monitor nodes and inserts
        ``monitorexit_if_held`` drains on loop exits, but must preserve
        the static pairing — the postcondition counterpart of
        :func:`repro.sanitize.verify.check_monitor_balance` at the
        bytecode level.
        """
        depth_in: dict[int, int] = {self.graph.entry.id: 0}
        conflict: set[int] = set()
        changed = True
        while changed:
            changed = False
            for block in self.order:
                if block.id not in depth_in:
                    continue
                depth = depth_in[block.id]
                if block.id in conflict:
                    continue
                for node in block.nodes:
                    if node.op == "monitorenter":
                        depth += 1
                    elif node.op == "monitorexit":
                        depth -= 1
                        if depth < 0:
                            break
                if depth < 0:
                    if block.id not in conflict:
                        conflict.add(block.id)
                        self.issue(
                            f"monitor depth goes negative in B{block.id}",
                            pc=block.bc_pc)
                    continue
                t = block.terminator
                if t[0] == "return" and depth != 0:
                    self.issue(
                        f"B{block.id} returns with monitor depth {depth} "
                        "(unbalanced monitorenter)", pc=block.bc_pc)
                    conflict.add(block.id)
                    continue
                for succ in block.successors:
                    prev = depth_in.get(succ.id)
                    if prev is None:
                        depth_in[succ.id] = depth
                        changed = True
                    elif prev != depth and succ.id not in conflict:
                        conflict.add(succ.id)
                        self.issue(
                            f"monitor depth mismatch at merge B{succ.id}: "
                            f"{prev} vs {depth}", pc=succ.bc_pc)
