"""Static lock-order graph: predicting deadlocks without running.

Nodes are the abstract lock symbols of :mod:`repro.sanitize.locks`;
an edge ``a -> b`` means some thread can acquire ``b`` while holding
``a`` — directly (a nested ``synchronized``) or transitively (a call
made under ``a`` into a method that acquires ``b``).  A cycle in this
graph is a potential deadlock: two threads traversing the cycle from
different entry points can each hold what the other wants.

The abstraction is name-based (``this`` of class C is one node for all
instances of C), which is the classic sound-for-ordering/imprecise-for-
aliasing trade-off.  ``("?",)`` locks — params, array elements, locals
the symbolic interpreter lost — contribute *no* edges: an unknown node
would immediately manufacture spurious cycles.  The dynamic
happens-before layer covers what this pass abstracts away, and
:func:`cross_check` ties the two together by comparing a scheduler
thread dump's observed wait-for cycle with the predicted ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sanitize.locks import UNKNOWN, lock_facts, sym_name
from repro.sanitize.reports import StaticIssue
from repro.sanitize.verify import _classes_of


@dataclass
class LockOrderGraph:
    """Edges between abstract lock symbols, with one example site each."""

    edges: dict = field(default_factory=dict)   # (a, b) -> "Class.m:line"
    nodes: set = field(default_factory=set)

    def add_edge(self, a: tuple, b: tuple, site: str) -> None:
        if a == UNKNOWN or b == UNKNOWN or a == b:
            return
        self.nodes.add(a)
        self.nodes.add(b)
        self.edges.setdefault((a, b), site)

    def succs(self, node: tuple) -> list:
        return sorted(b for (a, b) in self.edges if a == node)

    # ------------------------------------------------------------------
    def cycles(self) -> list[list[tuple]]:
        """All nontrivial SCCs, each rotated to start at its least node.

        Deterministic: nodes are visited in sorted order and each cycle
        is reported as a sorted member list.
        """
        # Tarjan's algorithm, iterative, over sorted nodes.
        index: dict[tuple, int] = {}
        low: dict[tuple, int] = {}
        on_stack: set = set()
        stack: list[tuple] = []
        sccs: list[list[tuple]] = []
        counter = [0]

        def strongconnect(root):
            work = [(root, iter(self.succs(root)))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, succs = work[-1]
                advanced = False
                for succ in succs:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(self.succs(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        sccs.append(sorted(scc))

        for node in sorted(self.nodes):
            if node not in index:
                strongconnect(node)
        sccs.sort()
        return sccs

    def issues(self) -> list[StaticIssue]:
        """One warning per predicted deadlock cycle."""
        out = []
        for cycle in self.cycles():
            names = [sym_name(s) for s in cycle]
            # An example edge inside the cycle locates the report.
            members = set(cycle)
            site = min(
                site for (a, b), site in self.edges.items()
                if a in members and b in members)
            out.append(StaticIssue(
                "lockorder", "warning", site.rsplit(":", 1)[0], -1,
                int(site.rsplit(":", 1)[1]),
                "lock-order cycle (potential deadlock): "
                + " <-> ".join(names)))
        return out

    def format(self) -> str:
        lines = [f"lock-order graph: {len(self.nodes)} locks, "
                 f"{len(self.edges)} edges"]
        for (a, b) in sorted(self.edges):
            lines.append(f"  {sym_name(a)} -> {sym_name(b)} "
                         f"[{self.edges[(a, b)]}]")
        return "\n".join(lines)


def build_lock_order(program) -> LockOrderGraph:
    """Build the whole-program lock-order graph.

    Interprocedural: a call executed while holding lock ``a`` adds edges
    from ``a`` to every lock the callee may (transitively) acquire,
    resolved name-wise over the static call graph.  Virtual calls with
    an unknown owner fan out to every class defining the method name;
    closure calls (``invoke`` through a handle) are skipped — the static
    pass cannot see through them, the dynamic sanitizer can.
    """
    classes = _classes_of(program)
    methods = {}          # qualified -> JMethod
    by_name = {}          # simple name -> [qualified]
    all_facts = {}        # qualified -> LockFacts
    for cls in classes:
        for name in sorted(cls.methods):
            method = cls.methods[name]
            methods[method.qualified] = method
            by_name.setdefault(name, []).append(method.qualified)
            all_facts[method.qualified] = lock_facts(method)

    def resolve(callee: tuple) -> list[str]:
        owner, name = callee
        if owner is None:
            if name == "invoke":
                return []
            return by_name.get(name, [])
        qualified = f"{owner}.{name}"
        if qualified in methods:
            return [qualified]
        # Inherited method: find it anywhere under the simple name.
        return [q for q in by_name.get(name, [])]

    # Transitive may-acquire sets, to fixpoint over the call graph.
    acquires = {
        q: {a.lock for a in f.acquires if a.lock != UNKNOWN}
        for q, f in all_facts.items()}
    changed = True
    while changed:
        changed = False
        for q, facts in all_facts.items():
            mine = acquires[q]
            before = len(mine)
            for call in facts.calls:
                for callee in resolve(call.callee):
                    mine |= acquires[callee]
            if len(mine) != before:
                changed = True

    graph = LockOrderGraph()
    for q in sorted(all_facts):
        facts = all_facts[q]
        for acq in facts.acquires:
            site = f"{q}:{acq.line}"
            for held in acq.held:
                graph.add_edge(held, acq.lock, site)
        for call in facts.calls:
            if not call.held:
                continue
            site = f"{q}:{call.line}"
            for callee in resolve(call.callee):
                for lock in sorted(acquires[callee]):
                    for held in call.held:
                        graph.add_edge(held, lock, site)
    return graph


def cross_check(graph: LockOrderGraph, thread_dump: dict) -> dict:
    """Compare a dynamic deadlock (scheduler dump) with the static graph.

    Returns ``{"dynamic_cycle", "blocked_monitors", "static_cycles",
    "consistent"}`` where ``consistent`` means: either no dynamic
    deadlock was observed, or the static graph predicted at least one
    lock-order cycle (the static abstraction cannot always name the
    same objects — monitors are instances, nodes are symbols — so the
    check is at the did-we-predict-any level, refined by class overlap
    when tags allow it).
    """
    dynamic = thread_dump.get("deadlock_cycle")
    blocked = sorted({
        t["blocked_on"] for t in thread_dump.get("threads", ())
        if t.get("blocked_on")})
    static_cycles = [[sym_name(s) for s in c] for c in graph.cycles()]
    return {
        "dynamic_cycle": dynamic,
        "blocked_monitors": blocked,
        "static_cycles": static_cycles,
        "consistent": dynamic is None or bool(static_cycles),
    }
