"""Static and dynamic correctness tooling for guest programs.

The Renaissance paper positions the suite as a testbed for dynamic
analyses and race detectors (Section 6: "a good platform for evaluating
... concurrency bug detection tools").  This package supplies that
tooling layer for the reproduction:

Static layer (no execution required)
    - :mod:`repro.sanitize.cfg` — control-flow graphs, reverse postorder
      and dominators over :class:`repro.jvm.bytecode.Instr` lists,
    - :mod:`repro.sanitize.dataflow` — a reusable worklist dataflow
      engine (forward and backward),
    - :mod:`repro.sanitize.verify` — a structural bytecode verifier
      (stack-depth balance, MONITORENTER/MONITOREXIT balance,
      unreachable code, use-before-def locals),
    - :mod:`repro.sanitize.locks` — symbolic abstract interpretation
      computing the must-hold lockset at every pc,
    - :mod:`repro.sanitize.lockset` — fields accessed both under and
      outside a monitor (inconsistent-locking warnings),
    - :mod:`repro.sanitize.lockorder` — a static lock-order graph whose
      cycles predict deadlocks, cross-checkable against the scheduler's
      dynamic wait-for cycle.

Compiler verification layer (static, over JIT artifacts)
    - :mod:`repro.sanitize.irverify` — SSA IR well-formedness verifier
      run after every pipeline phase (``run_pipeline(verify=True)``,
      ``VM(verify_ir=True)``); violations raise :class:`IRVerifyError`
      attributed to the offending phase,
    - :mod:`repro.sanitize.blockverify` — tier-1 superblock validation:
      entry-table legitimacy, cost/instruction accounting against the
      cost model, deopt-metadata completeness,
    - :mod:`repro.sanitize.mutations` — the corpus of deliberately
      broken compiles proving both verifiers actually detect breakage
      (``python -m repro.sanitize --mutations``, ``make verify-ir``).

Dynamic layer (checked execution)
    - :mod:`repro.sanitize.hb` — a FastTrack-style happens-before race
      sanitizer: vector clocks on threads/monitors, epochs on heap
      fields, hooked into the interpreter and the scheduler.  Same seed
      in, byte-identical :class:`~repro.sanitize.reports.RaceReport` out.
    - :mod:`repro.sanitize.plugin` — harness integration
      (:class:`SanitizerPlugin`, :func:`run_checked`); see also
      ``run_suite(sanitize=...)`` in :mod:`repro.faults.resilience`.

Quick start::

    from repro.sanitize import run_checked
    from repro.suites.registry import get_benchmark

    report, result = run_checked(get_benchmark("philosophers"))
    assert report.clean, report.format()
"""

from repro.sanitize.blockverify import BlockVerifyError, verify_tier1_code
from repro.sanitize.cfg import CFG, BasicBlock, build_cfg, dominators
from repro.sanitize.dataflow import DataflowProblem, DataflowResult, solve
from repro.sanitize.hb import RaceSanitizer, SanitizerConfig
from repro.sanitize.irverify import IRVerifyError, verify_graph
from repro.sanitize.mutations import MutationResult, run_corpus
from repro.sanitize.lockorder import LockOrderGraph, build_lock_order, cross_check
from repro.sanitize.lockset import lockset_issues
from repro.sanitize.locks import lock_facts
from repro.sanitize.plugin import SanitizerPlugin, run_checked
from repro.sanitize.reports import RaceReport, StaticIssue
from repro.sanitize.verify import (
    check_monitor_balance,
    stack_effect,
    verify_method,
    verify_program,
)

__all__ = [
    "BlockVerifyError", "verify_tier1_code",
    "IRVerifyError", "verify_graph",
    "MutationResult", "run_corpus",
    "CFG", "BasicBlock", "build_cfg", "dominators",
    "DataflowProblem", "DataflowResult", "solve",
    "RaceSanitizer", "SanitizerConfig",
    "LockOrderGraph", "build_lock_order", "cross_check",
    "lockset_issues", "lock_facts",
    "SanitizerPlugin", "run_checked",
    "RaceReport", "StaticIssue",
    "check_monitor_balance", "stack_effect",
    "verify_method", "verify_program",
]
