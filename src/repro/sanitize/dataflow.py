"""Generic worklist dataflow engine over :class:`~repro.sanitize.cfg.CFG`.

A pass describes itself as a :class:`DataflowProblem` — direction, the
boundary fact at the entry (or exits, for backward problems), a ``join``
for merging facts at control-flow confluences, and a per-instruction
transfer function.  :func:`solve` iterates to a fixpoint over reachable
blocks in (reverse) postorder and returns the per-block in/out facts.

``None`` is the "top" sentinel: a block that has not been reached by any
fact yet.  ``join`` is never called with ``None`` operands; a fact that
is still ``None`` after solving belongs to an unreachable block.

Facts must be immutable values with structural equality (``frozenset``,
tuples, ints) — the engine detects convergence via ``!=``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.sanitize.cfg import CFG


@dataclass
class DataflowProblem:
    """One dataflow analysis: lattice + transfer in, fixpoint out."""

    direction: str                       # "forward" | "backward"
    boundary: object                     # fact at entry (or exit) blocks
    join: Callable[[object, object], object]
    transfer: Callable[[object, object, int], object]
    # transfer(fact, instr, pc) -> fact; applied in pc order (forward)
    # or reverse pc order (backward) within each block.
    name: str = "dataflow"


@dataclass
class DataflowResult:
    """Fixpoint facts, per block index.  ``None`` = unreachable/top."""

    problem: DataflowProblem
    cfg: CFG
    in_facts: dict[int, object] = field(default_factory=dict)
    out_facts: dict[int, object] = field(default_factory=dict)

    def fact_at(self, pc: int) -> object:
        """The fact holding *before* ``pc`` executes (forward problems).

        Recomputed by replaying the block's transfers from its in-fact;
        handy for reporting, not for hot loops.
        """
        block = self.cfg.block_of(pc)
        fact = self.in_facts.get(block.index)
        if fact is None:
            return None
        transfer = self.problem.transfer
        for p in range(block.start, pc):
            fact = transfer(fact, self.cfg.code[p], p)
        return fact


def solve(cfg: CFG, problem: DataflowProblem) -> DataflowResult:
    """Run ``problem`` to fixpoint over the reachable blocks of ``cfg``."""
    forward = problem.direction == "forward"
    if not forward and problem.direction != "backward":
        raise ValueError(f"bad direction {problem.direction!r}")

    order = cfg.rpo()
    if not forward:
        order = list(reversed(order))
    reachable = {b.index for b in order}
    transfer = problem.transfer
    join = problem.join
    code = cfg.code

    def flow_through(block, fact):
        pcs = block.pcs() if forward else reversed(block.pcs())
        for pc in pcs:
            fact = transfer(fact, code[pc], pc)
        return fact

    in_facts: dict[int, object] = {i: None for i in reachable}
    out_facts: dict[int, object] = {i: None for i in reachable}

    # Boundary blocks: the entry (forward) or every exit block (backward:
    # blocks whose terminator has no successors).
    if forward:
        in_facts[cfg.entry] = problem.boundary
    else:
        for block in order:
            if not block.succs:
                out_facts[block.index] = problem.boundary

    worklist = deque(b.index for b in order)
    queued = set(worklist)
    blocks = cfg.blocks
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        block = blocks[index]
        if forward:
            fact = in_facts[index]
            for pred in block.preds:
                if pred in reachable and out_facts[pred] is not None:
                    prior = out_facts[pred]
                    fact = prior if fact is None else join(fact, prior)
            # Re-merging predecessors may refine the entry fact too; keep
            # the boundary joined in at the entry block.
            if index == cfg.entry:
                fact = problem.boundary if fact is None \
                    else join(fact, problem.boundary)
            if fact is None:
                continue
            in_facts[index] = fact
            new_out = flow_through(block, fact)
            if new_out != out_facts[index]:
                out_facts[index] = new_out
                for succ in block.succs:
                    if succ in reachable and succ not in queued:
                        worklist.append(succ)
                        queued.add(succ)
        else:
            fact = out_facts[index]
            for succ in block.succs:
                if succ in reachable and in_facts[succ] is not None:
                    prior = in_facts[succ]
                    fact = prior if fact is None else join(fact, prior)
            if not block.succs:
                fact = problem.boundary if fact is None \
                    else join(fact, problem.boundary)
            if fact is None:
                continue
            out_facts[index] = fact
            new_in = flow_through(block, fact)
            if new_in != in_facts[index]:
                in_facts[index] = new_in
                for pred in block.preds:
                    if pred in reachable and pred not in queued:
                        worklist.append(pred)
                        queued.add(pred)

    return DataflowResult(problem, cfg, in_facts, out_facts)
