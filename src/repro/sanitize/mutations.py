"""Mutation corpus: deliberately broken IR and superblock artifacts.

The verifier's own test harness.  Each mutator takes a freshly built,
*correct* compilation of the corpus program and breaks exactly one
invariant — a dropped operand, a cleared terminator, a monitorexit
deleted, a tampered budget flush — at a chosen pipeline phase (via
``run_pipeline``'s ``mutate`` hook) or on the emitted tier-1 code.  A
healthy verifier detects every variant and attributes it to the phase
whose checkpoint observed it; a verifier that misses one has a hole
exactly where a real phase bug could hide.

``run_corpus()`` executes every variant and returns one
:class:`MutationResult` per mutation; the ``repro.sanitize --mutations``
CLI and the tier-2 ``make verify-ir`` target both drive it.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass

from repro.jit.ir import FrameState, Node, Block

__all__ = ["MutationResult", "run_corpus", "IR_MUTATIONS", "EMIT_MUTATIONS",
           "CORPUS_SOURCE"]


#: Guest program every variant compiles: a bounds-guarded reduction loop
#: (guards, φ-nodes), a synchronized region (monitors), a recursive call
#: that survives inlining (callsite framestates), and a scalar-replaced
#: allocation (escape analysis material) kept live across a bounds guard
#: so a rematerialization recipe lands in that guard's framestate.
CORPUS_SOURCE = """
class Box { var v; }
class T {
    static def rec(x) {
        if (x < 1) { return 0; }
        return T.rec(x - 1) + x;
    }
    static def m(a, n, lock) {
        var i = 0;
        var s = 0;
        while (i < n) {
            s = s + a[i];
            i = i + 1;
        }
        synchronized (lock) {
            s = s + T.rec(n);
        }
        var b = new Box();
        b.v = s;
        s = s + a[0];
        return s + b.v;
    }
}
"""


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one corpus variant."""

    name: str         # mutator name
    layer: str        # "ir" (pipeline checkpoint) or "emit" (superblock)
    phase: str        # phase the break is planted after ("emit" for emit)
    detected: bool    # did the verifier flag it at all?
    attributed: bool  # ...and blame the right phase?
    message: str      # the verifier's first finding (or why not)

    def format(self) -> str:
        mark = "DETECTED" if self.detected and self.attributed else (
            "MISATTRIBUTED" if self.detected else "MISSED")
        return f"{mark:13s} {self.layer}:{self.name} @ {self.phase}"


class CannotApply(Exception):
    """The corpus program lost the structure this mutator targets —
    a corpus bug, not a verifier finding."""


# ----------------------------------------------------------------------
# IR-level mutators.  Each receives the graph right after its phase ran
# and must break exactly one invariant.
# ----------------------------------------------------------------------
def _find(graph, pred, what):
    for block in graph.blocks:
        for index, node in enumerate(block.nodes):
            if pred(node):
                return block, index, node
    raise CannotApply(f"corpus program has no {what}")


_BINARY = {"add", "sub", "mul", "div", "cmp", "and", "or", "xor"}
_INVOKES = {"invokestatic", "invokespecial", "invokevirtual",
            "invokedirect", "invokehandle"}


def _drop_binary_operand(graph):
    _, _, node = _find(graph, lambda n: n.op in _BINARY
                       and len(n.inputs) == 2, "binary node")
    node.inputs.pop()


def _drop_callsite_state(graph):
    _, _, node = _find(graph, lambda n: n.op in _INVOKES
                       and isinstance(n.value, FrameState),
                       "stateful invoke")
    node.value = None


def _clear_terminator(graph):
    graph.blocks[-1].terminator = None


def _drop_phi_input(graph):
    for block in graph.blocks:
        if block.phis and len(block.preds) >= 2:
            block.phis[0].inputs.pop()
            return
    raise CannotApply("corpus program has no merge-point phi")


def _stale_block_backref(graph):
    if len(graph.blocks) < 2:
        raise CannotApply("corpus graph has a single block")
    _, _, node = _find(graph, lambda n: True, "node")
    node.block = graph.blocks[-1] if node.block is not graph.blocks[-1] \
        else graph.blocks[0]


def _double_schedule(graph):
    block, _, node = _find(graph, lambda n: True, "node")
    other = next((b for b in graph.blocks if b is not block), None)
    if other is None:
        raise CannotApply("corpus graph has a single block")
    other.nodes.append(node)


def _drop_guard_state(graph):
    _, _, node = _find(graph, lambda n: n.op == "guard", "guard")
    node.extra.state = None


def _add_guard_operand(graph):
    _, _, node = _find(graph, lambda n: n.op == "guard" and n.inputs,
                       "guard with operands")
    node.inputs.append(node.inputs[0])


def _sink_def_past_use(graph):
    for block in graph.blocks:
        nodes = block.nodes
        for j, use in enumerate(nodes):
            for i in range(j):
                node = nodes[i]
                if node in use.inputs and node.op not in ("const", "param"):
                    del nodes[i]
                    nodes.append(node)
                    return
    raise CannotApply("corpus program has no same-block def/use pair")


def _drop_monitorexit(graph):
    block, index, _ = _find(graph, lambda n: n.op == "monitorexit",
                            "monitorexit")
    del block.nodes[index]


def _dangle_operand(graph):
    _, _, node = _find(graph, lambda n: len(n.inputs) >= 1
                       and n.op != "phi", "node with operands")
    orphan = Node("add", [Node("const", value=1), Node("const", value=1)])
    node.inputs[0] = orphan


def _vos_field_from_future(graph):
    """Point a rematerialization-recipe field at a ``new`` scheduled
    *after* the guard that carries the recipe — the shape of a real
    partial-escape-analysis bug (a later materialization rewriting an
    earlier guard's recipe) that the verifier must reject."""
    from repro.jit.ir import VirtualObjectState

    for block in graph.blocks:
        for node in block.nodes:
            if node.op != "guard" or node.extra.state is None:
                continue
            for value in node.extra.state.values():
                if isinstance(value, VirtualObjectState) \
                        and value.field_values:
                    future = Node("new", value=value.class_name)
                    future.block = block
                    block.nodes.append(future)
                    name, _ = value.field_values[0]
                    value.field_values = \
                        ((name, future),) + value.field_values[1:]
                    return
    raise CannotApply("corpus program has no guard carrying a "
                      "virtual-object recipe")


def _branch_to_foreign_block(graph):
    for block in graph.blocks:
        t = block.terminator
        if t is not None and t[0] == "branch":
            block.terminator = ("branch", t[1], Block(), t[3])
            return
    raise CannotApply("corpus program has no branch")


#: name -> (phase planted after, mutator).  One checkpoint each; the
#: verifier must attribute the break to exactly that phase.
IR_MUTATIONS = {
    "binary-operand-dropped": ("parse", _drop_binary_operand),
    "callsite-state-dropped": ("inlining", _drop_callsite_state),
    "terminator-cleared": ("cleanup", _clear_terminator),
    "phi-input-dropped": ("method-handle", _drop_phi_input),
    "stale-block-backref": ("escape-analysis", _stale_block_backref),
    "recipe-field-from-future": ("escape-analysis", _vos_field_from_future),
    "node-doubly-scheduled": ("duplication", _double_schedule),
    "guard-state-dropped": ("guard-motion", _drop_guard_state),
    "guard-operand-added": ("vectorize", _add_guard_operand),
    "def-sunk-past-use": ("unroll", _sink_def_past_use),
    "monitorexit-dropped": ("lock-coarsen", _drop_monitorexit),
    "dangling-operand": ("atomic-coalesce", _dangle_operand),
    "branch-target-foreign": ("schedule", _branch_to_foreign_block),
}


# ----------------------------------------------------------------------
# Emit-level mutators: tamper with a correct Tier1Code; blockverify must
# notice the artifact no longer matches the independent ground truth.
# ----------------------------------------------------------------------
def _shift_entry(code):
    entries = list(code.entries)
    for pc, fn in enumerate(entries):
        if fn is not None and pc + 1 < len(entries) \
                and entries[pc + 1] is None:
            entries[pc + 1] = fn
            entries[pc] = None
            code.entries = entries
            return
    raise CannotApply("no shiftable superblock entry")


def _tamper_sites(code):
    code.sites += 3


def _tamper_nblocks(code):
    code.nblocks += 1


def _tamper_cycles(code):
    code.compile_cycles += 7


def _tamper_source(pattern, what):
    def mutate(code):
        rx = re.compile(pattern)
        match = rx.search(code.source)
        if match is None:
            raise CannotApply(f"emitted source has no {what}")
        tampered = match.group(1) + str(int(match.group(2)) + 1)
        code.source = (code.source[:match.start()] + tampered
                       + code.source[match.end():])
    return mutate


EMIT_MUTATIONS = {
    "entry-shifted-off-leader": _shift_entry,
    "sites-total-tampered": _tamper_sites,
    "nblocks-total-tampered": _tamper_nblocks,
    "compile-cycles-tampered": _tamper_cycles,
    "budget-flush-tampered": _tamper_source(
        r"(thread\.budget = budget - )(\d+)", "budget flush"),
    "instruction-count-tampered": _tamper_source(
        r"(_ct\.instructions \+= )(\d+)", "instruction bump"),
}


# ----------------------------------------------------------------------
# Harness.
# ----------------------------------------------------------------------
def _build_graph():
    from repro.jit.graph_builder import build_graph
    from repro.jvm.classfile import ClassPool
    from repro.lang import compile_program

    program = compile_program(CORPUS_SOURCE)
    pool = ClassPool()
    for cls in program.classes:
        pool.define(cls)
    pool.link_all()
    return build_graph(pool.get("T").resolve_method("m"), pool), pool


def _run_ir_variant(name: str, phase: str, mutator) -> MutationResult:
    from repro.jit.jit import CompileStats
    from repro.jit.pipeline import graal_config, run_pipeline
    from repro.sanitize.irverify import IRVerifyError

    graph, pool = _build_graph()
    try:
        run_pipeline(graph, graal_config(), pool, CompileStats(),
                     verify=True, mutate={phase: mutator})
    except IRVerifyError as exc:
        return MutationResult(name, "ir", phase, True, exc.phase == phase,
                              exc.issues[0].message if exc.issues
                              else str(exc))
    return MutationResult(name, "ir", phase, False, False,
                          "verified clean — mutation not detected")


def _compile_tier1():
    """A correct Tier1Code for the corpus method, straight off the
    emitter (no VM run needed: the emitter is a pure function of the
    bytecode)."""
    from repro.jit.emit import compile_method
    from repro.runtime.vm import VM

    from repro.lang import compile_program

    vm = VM(jit=None, engine="tier1")
    vm.load(compile_program(CORPUS_SOURCE))
    method = vm.pool.get("T").resolve_method("m")
    code = compile_method(vm.interpreter, method)
    if code is None:
        raise CannotApply("emitter declined the corpus method")
    return code, method


def _run_emit_variant(name: str, mutator) -> MutationResult:
    from repro.sanitize.blockverify import verify_tier1_code

    code, method = _compile_tier1()
    baseline = verify_tier1_code(code, method)
    if baseline:
        return MutationResult(name, "emit", "emit", False, False,
                              f"corpus artifact not clean: "
                              f"{baseline[0].message}")
    tampered = copy.copy(code)
    tampered.entries = list(code.entries)
    mutator(tampered)
    issues = verify_tier1_code(tampered, method)
    if issues:
        return MutationResult(name, "emit", "emit", True, True,
                              issues[0].message)
    return MutationResult(name, "emit", "emit", False, False,
                          "verified clean — mutation not detected")


def run_corpus(*, ir: bool = True, emit: bool = True) -> list[MutationResult]:
    """Run every corpus variant; returns one result per mutation."""
    results: list[MutationResult] = []
    if ir:
        for name, (phase, mutator) in IR_MUTATIONS.items():
            results.append(_run_ir_variant(name, phase, mutator))
    if emit:
        for name, mutator in EMIT_MUTATIONS.items():
            results.append(_run_emit_variant(name, mutator))
    return results
