"""Report types shared by the static passes and the dynamic sanitizer.

Both mirror :class:`repro.faults.report.FailureReport`: plain dataclasses
with a canonical :meth:`to_json` (sorted keys, fixed separators) so that
two runs with identical seeds compare byte-identical — the property the
acceptance tests assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StaticIssue:
    """One finding of a static pass over a single method."""

    pass_name: str       # "verify" | "lockset" | "lockorder"
    severity: str        # "error" | "warning"
    method: str          # qualified "Class.method"
    pc: int              # bytecode pc (-1 when not pc-specific)
    line: int            # source line (0 when unknown)
    message: str

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "severity": self.severity,
            "method": self.method,
            "pc": self.pc,
            "line": self.line,
            "message": self.message,
        }

    def format(self) -> str:
        where = f"{self.method}:{self.line}" if self.line else self.method
        pc = f" @pc{self.pc}" if self.pc >= 0 else ""
        return (f"{self.severity.upper()} [{self.pass_name}] "
                f"{where}{pc}: {self.message}")


def issues_to_json(issues) -> str:
    """Canonical JSON for a list of :class:`StaticIssue`."""
    return json.dumps([i.to_dict() for i in issues], sort_keys=True,
                      separators=(",", ":"))


@dataclass
class RaceReport:
    """Everything one checked (sanitized) run found.

    ``races`` is a list of dicts, one per distinct race, each carrying
    the variable, both access kinds, both sites (``Class.method:line``)
    and the racing thread names.  ``counts`` is the sanitizer counter
    snapshot (race_checks, vc_promotions, ...).  Reports are replayable:
    re-running the same benchmark with the same ``schedule_seed`` (and
    cores) reproduces the identical report, byte for byte.
    """

    benchmark: str
    config: str
    schedule_seed: int
    cores: int
    races: list = field(default_factory=list)
    static_issues: list = field(default_factory=list)  # StaticIssue dicts
    counts: dict = field(default_factory=dict)
    suppressed: int = 0   # races silenced by the suppression list
    truncated: bool = False   # max_reports reached; later races dropped

    @property
    def clean(self) -> bool:
        return not self.races

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "config": self.config,
            "schedule_seed": self.schedule_seed,
            "cores": self.cores,
            "races": list(self.races),
            "static_issues": list(self.static_issues),
            "counts": dict(self.counts),
            "suppressed": self.suppressed,
            "truncated": self.truncated,
        }

    def to_json(self) -> str:
        """Canonical serialization: byte-identical for identical runs."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> RaceReport:
        return cls(**json.loads(text))

    # ------------------------------------------------------------------
    def reproduce_hint(self) -> str:
        return (f"run_checked(get_benchmark({self.benchmark!r}), "
                f"cores={self.cores}, "
                f"schedule_seed={self.schedule_seed})")

    def format(self) -> str:
        verdict = "clean" if self.clean else f"{len(self.races)} race(s)"
        lines = [
            f"RACE REPORT {self.benchmark} [{self.config}] "
            f"seed={self.schedule_seed} cores={self.cores}: {verdict}"
        ]
        for race in self.races:
            lines.append(
                f"  race on {race['variable']}:"
            )
            lines.append(
                f"    {race['prior_kind']} by {race['prior_thread']} "
                f"at {race['prior_site']}")
            lines.append(
                f"    {race['kind']} by {race['thread']} "
                f"at {race['site']}")
        if self.suppressed:
            lines.append(f"  suppressed: {self.suppressed}")
        if self.truncated:
            lines.append("  (truncated: report limit reached)")
        if self.counts:
            checked = self.counts.get("race_checks", 0)
            lines.append(f"  checks: {checked} accesses, "
                         f"{self.counts.get('hb_edges', 0)} hb edges, "
                         f"{self.counts.get('vc_promotions', 0)} "
                         "vc promotions")
        lines.append("  reproduce: " + self.reproduce_hint())
        return "\n".join(lines)
