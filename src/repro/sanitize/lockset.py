"""Inconsistent-locking analysis (static lockset pass).

Aggregates the per-method :class:`~repro.sanitize.locks.LockFacts` over
a whole program and flags fields that are accessed both *under* a
monitor and *outside* any monitor, with at least one write — the classic
Eraser-style "candidate lockset went empty" signal, computed statically.

Findings are warnings, not errors: lock-free publication idioms (final
fields after construction, volatile-like atomics) are legitimate.
Constructor (``init``/``__clinit__``) accesses do not count as unguarded
evidence — the object is thread-confined during construction — and
fields touched by CAS/ATOMIC_* anywhere are skipped entirely.
"""

from __future__ import annotations

from repro.sanitize.locks import lock_facts, sym_name
from repro.sanitize.reports import StaticIssue
from repro.sanitize.verify import _classes_of

_CONSTRUCTORS = ("init", "__clinit__")


def lockset_issues(program) -> list[StaticIssue]:
    """All inconsistent-locking warnings for a compiled program."""
    # target -> aggregated evidence across methods.
    guarded: dict[tuple, int] = {}
    unguarded: dict[tuple, list] = {}   # [(qualified, line, kind)]
    writes: dict[tuple, int] = {}
    atomic: set = set()

    for cls in _classes_of(program):
        for name in sorted(cls.methods):
            method = cls.methods[name]
            if method.code is None:
                continue
            facts = lock_facts(method)
            atomic |= facts.atomic_fields
            in_ctor = method.name in _CONSTRUCTORS
            for access in facts.accesses:
                target = access.target
                if access.kind == "write":
                    writes[target] = writes.get(target, 0) + 1
                if access.held:
                    guarded[target] = guarded.get(target, 0) + 1
                elif not in_ctor:
                    unguarded.setdefault(target, []).append(
                        (method.qualified, access.line, access.kind))

    issues: list[StaticIssue] = []
    for target in sorted(guarded):
        if target not in unguarded or not writes.get(target):
            continue
        if target in atomic or ("name", target[-1]) in atomic:
            continue
        sites = unguarded[target]
        qualified, line, kind = sites[0]
        extra = f" (+{len(sites) - 1} more)" if len(sites) > 1 else ""
        issues.append(StaticIssue(
            "lockset", "warning", qualified, -1, line,
            f"field {sym_name(target)} is locked in "
            f"{guarded[target]} place(s) but {kind} without a lock "
            f"here{extra}"))
    return issues
