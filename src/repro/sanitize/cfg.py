"""Control-flow graphs over simulated-JVM bytecode.

A :class:`CFG` partitions an :class:`~repro.jvm.bytecode.Instr` list
into maximal basic blocks and records the successor/predecessor edges
implied by :func:`repro.jvm.bytecode.branch_targets`.  The graph is the
substrate for the dataflow engine (:mod:`repro.sanitize.dataflow`) and
for the static passes; :func:`dominators` provides the classic iterative
dominator sets used by loop/locking analyses.

Unreachable blocks are kept in :attr:`CFG.blocks` (the verifier reports
them) but excluded from :meth:`CFG.rpo` and from dataflow solving.
"""

from __future__ import annotations

from repro.jvm.bytecode import Instr, branch_targets


class BasicBlock:
    """A maximal straight-line pc range ``[start, end)``."""

    __slots__ = ("index", "start", "end", "succs", "preds")

    def __init__(self, index: int, start: int, end: int) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.succs: list[int] = []     # successor block indices
        self.preds: list[int] = []     # predecessor block indices

    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:
        return (f"<B{self.index} [{self.start},{self.end}) "
                f"-> {self.succs}>")


class CFG:
    """Basic blocks plus edges for one method's bytecode."""

    def __init__(self, code: list[Instr], blocks: list[BasicBlock],
                 entry: int) -> None:
        self.code = code
        self.blocks = blocks
        self.entry = entry
        self._block_of_pc: dict[int, int] = {}
        for block in blocks:
            for pc in block.pcs():
                self._block_of_pc[pc] = block.index

    def block_of(self, pc: int) -> BasicBlock:
        return self.blocks[self._block_of_pc[pc]]

    def reachable(self) -> list[BasicBlock]:
        """Blocks reachable from the entry, in discovery order."""
        seen = {self.entry}
        order = [self.entry]
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    order.append(succ)
                    stack.append(succ)
        return [self.blocks[i] for i in sorted(order)]

    def rpo(self) -> list[BasicBlock]:
        """Reachable blocks in reverse postorder (forward-dataflow order)."""
        seen: set[int] = set()
        post: list[int] = []

        def visit(index: int) -> None:
            stack = [(index, iter(self.blocks[index].succs))]
            seen.add(index)
            while stack:
                node, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    post.append(node)
                    stack.pop()

        visit(self.entry)
        return [self.blocks[i] for i in reversed(post)]

    def __repr__(self) -> str:
        return f"<CFG {len(self.blocks)} blocks, entry B{self.entry}>"


def build_cfg(code: list[Instr]) -> CFG:
    """Partition ``code`` into basic blocks and wire the edges."""
    n = len(code)
    if n == 0:
        raise ValueError("cannot build a CFG for empty code")
    leaders = {0}
    for pc, instr in enumerate(code):
        targets = branch_targets(instr, pc)
        # A branch or terminator ends its block: the next pc (if any)
        # starts a new one, as does every explicit target.
        if targets != [pc + 1]:
            if pc + 1 < n:
                leaders.add(pc + 1)
            for target in targets:
                leaders.add(target)
    ordered = sorted(leaders)
    blocks: list[BasicBlock] = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else n
        blocks.append(BasicBlock(i, start, end))
    index_of = {b.start: b.index for b in blocks}
    for block in blocks:
        last_pc = block.end - 1
        for target in branch_targets(code[last_pc], last_pc):
            succ = index_of[target]
            block.succs.append(succ)
            blocks[succ].preds.append(block.index)
    return CFG(code, blocks, index_of[0])


def dominators(cfg: CFG) -> dict[int, frozenset[int]]:
    """Dominator sets per reachable block (iterative fixpoint).

    ``dominators(cfg)[b]`` contains every block index that dominates
    ``b`` (including ``b`` itself).  Unreachable blocks are absent.
    """
    order = cfg.rpo()
    reachable = {b.index for b in order}
    every = frozenset(reachable)
    doms: dict[int, frozenset[int]] = {
        b.index: every for b in order}
    doms[cfg.entry] = frozenset({cfg.entry})
    changed = True
    while changed:
        changed = False
        for block in order:
            if block.index == cfg.entry:
                continue
            preds = [p for p in block.preds if p in reachable]
            new = every
            for pred in preds:
                new = new & doms[pred]
            new = new | {block.index}
            if new != doms[block.index]:
                doms[block.index] = new
                changed = True
    return doms
