"""Symbolic must-hold lock analysis.

An abstract interpretation over the shared dataflow engine tracking, at
every pc, *which* locks are definitely held — not just how many (that is
the verifier's job).  Values are abstracted to small symbols:

- ``("this", Class)`` — the receiver,
- ``("field", Class, name)`` — ``this.name`` (flattened, so the same
  field read twice is the same symbol),
- ``("static", Class, name)`` — a static field, e.g. the global
  ``STM.commitLock``,
- ``("param", "Class.method", slot)`` — an argument (fj-kmeans locks a
  parameter: ``synchronized (sumx) { ... }``),
- ``("const", value)`` — a constant,
- ``("?",)`` — anything else, including merge conflicts.

:func:`lock_facts` returns the per-method summary the lockset pass
(:mod:`repro.sanitize.lockset`) and the lock-order graph
(:mod:`repro.sanitize.lockorder`) both consume: every monitor
acquisition with the locks held at that point, and every field access
with the locks held around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.bytecode import Op
from repro.sanitize.cfg import build_cfg
from repro.sanitize.dataflow import DataflowProblem, solve
from repro.sanitize.verify import stack_effect

UNKNOWN = ("?",)


@dataclass(frozen=True)
class Acquire:
    """One MONITORENTER: the lock taken and the locks already held."""

    pc: int
    line: int
    lock: tuple
    held: tuple          # symbols held just before this acquire


@dataclass(frozen=True)
class FieldAccess:
    """One GETFIELD/PUTFIELD/GETSTATIC/PUTSTATIC with its context."""

    pc: int
    line: int
    kind: str            # "read" | "write"
    target: tuple        # ("field", Class, name) | ("static", Class, name)
    held: tuple          # symbols held at the access


@dataclass(frozen=True)
class CallSite:
    """One invoke with the locks held around it (for lock ordering)."""

    pc: int
    line: int
    callee: tuple        # (owner or None, name)
    held: tuple


@dataclass
class LockFacts:
    """Per-method lock summary."""

    qualified: str
    owner: str
    acquires: list = field(default_factory=list)    # [Acquire]
    accesses: list = field(default_factory=list)    # [FieldAccess]
    calls: list = field(default_factory=list)       # [CallSite]
    atomic_fields: set = field(default_factory=set)  # targets touched by CAS etc.


def _join_sym(a: tuple, b: tuple) -> tuple:
    return a if a == b else UNKNOWN


def _join_seq(a: tuple, b: tuple) -> tuple:
    n = min(len(a), len(b))
    return tuple(_join_sym(x, y) for x, y in zip(a[:n], b[:n]))


def _join(a, b):
    return (_join_seq(a[0], b[0]), _join_seq(a[1], b[1]),
            _join_seq(a[2], b[2]))


def lock_facts(method) -> LockFacts:
    """Compute the :class:`LockFacts` summary of one method."""
    facts = LockFacts(method.qualified, method.owner)
    if method.code is None:
        return facts
    code = method.code
    cfg = build_cfg(code)
    owner = method.owner
    qualified = method.qualified

    # Entry state: receiver in slot 0 for instance methods, parameters
    # after it, remaining slots unknown.
    entry_locals = []
    slot = 0
    if not method.static:
        entry_locals.append(("this", owner))
        slot = 1
    for i in range(method.params):
        entry_locals.append(("param", qualified, slot + i))
    while len(entry_locals) < max(method.max_locals, method.nargs):
        entry_locals.append(UNKNOWN)
    boundary = ((), tuple(entry_locals), ())

    def transfer(fact, instr, pc):
        stack, locals_, held = fact
        op = instr.op
        if op is Op.CONST:
            return stack + (("const", instr.arg),), locals_, held
        if op is Op.LOAD:
            sym = locals_[instr.arg] if instr.arg < len(locals_) else UNKNOWN
            return stack + (sym,), locals_, held
        if op is Op.STORE:
            new_locals = list(locals_)
            while len(new_locals) <= instr.arg:
                new_locals.append(UNKNOWN)
            new_locals[instr.arg] = stack[-1] if stack else UNKNOWN
            return stack[:-1], tuple(new_locals), held
        if op is Op.DUP:
            top = stack[-1] if stack else UNKNOWN
            return stack + (top,), locals_, held
        if op is Op.SWAP and len(stack) >= 2:
            return stack[:-2] + (stack[-1], stack[-2]), locals_, held
        if op is Op.GETFIELD:
            base = stack[-1] if stack else UNKNOWN
            if base[0] == "this":
                sym = ("field", base[1], instr.arg)
            else:
                sym = UNKNOWN
            return stack[:-1] + (sym,), locals_, held
        if op is Op.GETSTATIC:
            return stack + (("static",) + tuple(instr.arg),), locals_, held
        if op is Op.MONITORENTER:
            lock = stack[-1] if stack else UNKNOWN
            return stack[:-1], locals_, held + (lock,)
        if op is Op.MONITOREXIT:
            lock = stack[-1] if stack else UNKNOWN
            new_held = list(held)
            for i in range(len(new_held) - 1, -1, -1):
                if new_held[i] == lock:
                    del new_held[i]
                    break
            else:
                if new_held:
                    new_held.pop()
            return stack[:-1], locals_, tuple(new_held)
        pops, pushes = stack_effect(instr)
        new_stack = stack[:len(stack) - pops] if pops else stack
        if pushes:
            new_stack = new_stack + (UNKNOWN,) * pushes
        return new_stack, locals_, held

    result = solve(cfg, DataflowProblem("forward", boundary, _join, transfer))

    # Deterministic final sweep: collect acquires/accesses with their
    # stable (fixpoint) facts.
    for block in cfg.rpo():
        fact = result.in_facts[block.index]
        if fact is None:
            continue
        for pc in block.pcs():
            instr = code[pc]
            stack, locals_, held = fact
            op = instr.op
            if op is Op.MONITORENTER:
                lock = stack[-1] if stack else UNKNOWN
                facts.acquires.append(
                    Acquire(pc, instr.line, lock, held))
            elif op in (Op.GETFIELD, Op.PUTFIELD):
                depth = 1 if op is Op.GETFIELD else 2
                base = stack[-depth] if len(stack) >= depth else UNKNOWN
                if base[0] == "this":
                    target = ("field", base[1], instr.arg)
                    kind = "read" if op is Op.GETFIELD else "write"
                    facts.accesses.append(
                        FieldAccess(pc, instr.line, kind, target, held))
            elif op in (Op.GETSTATIC, Op.PUTSTATIC):
                target = ("static",) + tuple(instr.arg)
                kind = "read" if op is Op.GETSTATIC else "write"
                facts.accesses.append(
                    FieldAccess(pc, instr.line, kind, target, held))
            elif op in (Op.INVOKESTATIC, Op.INVOKESPECIAL,
                        Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE):
                facts.calls.append(CallSite(
                    pc, instr.line, (instr.arg[0], instr.arg[1]), held))
            elif op in (Op.CAS, Op.ATOMIC_GET, Op.ATOMIC_ADD):
                depth = {Op.CAS: 3, Op.ATOMIC_GET: 1, Op.ATOMIC_ADD: 2}[op]
                base = stack[-depth] if len(stack) >= depth else UNKNOWN
                if base[0] == "this":
                    facts.atomic_fields.add(("field", base[1], instr.arg))
                # Atomic fields are excluded from lockset reasoning even
                # when the receiver is unknown: the field *name* is
                # enough evidence of intentional lock-free access.
                facts.atomic_fields.add(("name", instr.arg))
            fact = transfer(fact, instr, pc)
    return facts


def sym_name(sym: tuple) -> str:
    """Human-readable form of a lock/field symbol."""
    if sym == UNKNOWN:
        return "?"
    kind = sym[0]
    if kind == "this":
        return f"this:{sym[1]}"
    if kind == "field":
        return f"{sym[1]}.{sym[2]}"
    if kind == "static":
        return f"{sym[1]}.{sym[2]}"
    if kind == "param":
        return f"{sym[1]}(arg{sym[2]})"
    if kind == "const":
        return repr(sym[1])
    return repr(sym)
