"""Content-addressed, checksummed result store for durable sweeps.

Determinism makes every completed unit cacheable forever: the outcome of
one ``(suite, benchmark, config, seed, round, engine)`` unit is a pure
function of its key, so the store files it under the SHA-256 of the
canonical-JSON key.  ``--resume`` (and, later, the
benchmark-as-a-service cache) then serves completed units straight from
disk instead of re-running them.

Object layout: ``<root>/objects/<aa>/<digest>`` where ``aa`` is the
first two hex digits (git-style fan-out).  Each object is::

    sha256-hex-of-payload \\n payload-bytes

The embedded checksum catches torn writes and bit rot: a payload that
fails verification is treated as *absent* (and unlinked), which simply
re-runs the unit — corruption is never fatal and never silently served.
Writes are atomic (temp file + ``os.replace``) so a ``kill -9``
mid-``put`` can never leave a half object under the final name.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle


def canonical_digest(key: dict) -> str:
    """SHA-256 of the canonical JSON encoding of a unit key."""
    body = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


def encode_outcome(outcome: dict) -> bytes:
    return pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)


def decode_outcome(payload: bytes) -> dict:
    return pickle.loads(payload)


class ResultStore:
    """Checksummed object store keyed by unit digest."""

    def __init__(self, root) -> None:
        self.root = str(root)
        self.objects = os.path.join(self.root, "objects")
        #: Corrupt objects encountered by :meth:`get` (digest, reason).
        self.corrupt: list[tuple[str, str]] = []

    def _path(self, digest: str) -> str:
        return os.path.join(self.objects, digest[:2], digest)

    # ------------------------------------------------------------------
    def put(self, digest: str, payload: bytes) -> str:
        """Atomically store ``payload`` under ``digest``; returns path."""
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        header = hashlib.sha256(payload).hexdigest().encode() + b"\n"
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
        os.replace(tmp, path)
        return path

    def get(self, digest: str) -> bytes | None:
        """Verified payload bytes, or None if absent/corrupt.

        A corrupt object is recorded in :attr:`corrupt` and unlinked so
        the unit re-runs and the next ``put`` rewrites it cleanly.
        """
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                header = fh.readline().strip()
                payload = fh.read()
        except OSError:
            return None
        if hashlib.sha256(payload).hexdigest().encode() != header:
            self.corrupt.append((digest, "payload checksum mismatch"))
            try:
                os.unlink(path)
            except OSError:                          # pragma: no cover
                pass
            return None
        return payload

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None

    def __len__(self) -> int:
        if not os.path.isdir(self.objects):
            return 0
        return sum(
            1 for fan in os.listdir(self.objects)
            for name in os.listdir(os.path.join(self.objects, fan))
            if not name.endswith(".tmp"))
