"""Content-addressed, checksummed result store for durable sweeps.

Determinism makes every completed unit cacheable forever: the outcome of
one ``(suite, benchmark, config, seed, round, engine)`` unit is a pure
function of its key, so the store files it under the SHA-256 of the
canonical-JSON key.  ``--resume`` (and, later, the
benchmark-as-a-service cache) then serves completed units straight from
disk instead of re-running them.

Object layout: ``<root>/objects/<aa>/<digest>`` where ``aa`` is the
first two hex digits (git-style fan-out).  Each object is::

    sha256-hex-of-payload \\n payload-bytes

The embedded checksum catches torn writes and bit rot: a payload that
fails verification is treated as *absent* (and unlinked), which simply
re-runs the unit — corruption is never fatal and never silently served.
Writes are atomic (temp file + ``os.replace``) so a ``kill -9``
mid-``put`` can never leave a half object under the final name.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle

from repro.errors import StoreLockedError

try:                                                 # POSIX only; the
    import fcntl                                     # lock degrades to
except ImportError:                                  # pragma: no cover
    fcntl = None                                     # a no-op elsewhere


def canonical_digest(key: dict) -> str:
    """SHA-256 of the canonical JSON encoding of a unit key."""
    body = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


def encode_outcome(outcome: dict) -> bytes:
    return pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)


def decode_outcome(payload: bytes) -> dict:
    return pickle.loads(payload)


class StoreLock:
    """Advisory single-writer lock over one sweep/store directory.

    The journal and store tolerate crashed writers (checksums, atomic
    replace) but not *concurrent* ones: two controllers appending to one
    journal interleave records, and resume-time replay would attribute
    them to the wrong sweep.  An exclusive ``flock`` on
    ``<root>/store.lock`` makes the single-writer assumption explicit —
    a second opener gets :class:`~repro.errors.StoreLockedError`
    immediately instead of corrupting state, and a ``kill -9`` releases
    the lock automatically with the process.
    """

    def __init__(self, root) -> None:
        self.path = os.path.join(str(root), "store.lock")
        self._fh = None

    def acquire(self, *, owner: str = "writer") -> "StoreLock":
        if fcntl is None:                            # pragma: no cover
            return self
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        fh = open(self.path, "a+")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.seek(0)
            holder = fh.read(256).strip() or "another process"
            fh.close()
            raise StoreLockedError(
                f"{os.path.dirname(self.path)} is locked by {holder}; "
                f"the journal/store allow a single writer — stop it "
                f"first (a killed writer releases the lock itself)")
        fh.truncate(0)
        fh.write(f"{owner} pid={os.getpid()}\n")
        fh.flush()
        self._fh = fh
        return self

    def release(self) -> None:
        if self._fh is not None:
            try:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            except OSError:                          # pragma: no cover
                pass
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


class ResultStore:
    """Checksummed object store keyed by unit digest."""

    def __init__(self, root) -> None:
        self.root = str(root)
        self.objects = os.path.join(self.root, "objects")
        #: Corrupt objects encountered by :meth:`get` (digest, reason).
        self.corrupt: list[tuple[str, str]] = []

    def _path(self, digest: str) -> str:
        return os.path.join(self.objects, digest[:2], digest)

    # ------------------------------------------------------------------
    def put(self, digest: str, payload: bytes) -> str:
        """Atomically store ``payload`` under ``digest``; returns path."""
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        header = hashlib.sha256(payload).hexdigest().encode() + b"\n"
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
        os.replace(tmp, path)
        return path

    def get(self, digest: str) -> bytes | None:
        """Verified payload bytes, or None if absent/corrupt.

        A corrupt object is recorded in :attr:`corrupt` and unlinked so
        the unit re-runs and the next ``put`` rewrites it cleanly.
        """
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                header = fh.readline().strip()
                payload = fh.read()
        except OSError:
            return None
        if hashlib.sha256(payload).hexdigest().encode() != header:
            self.corrupt.append((digest, "payload checksum mismatch"))
            try:
                os.unlink(path)
            except OSError:                          # pragma: no cover
                pass
            return None
        return payload

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None

    def __len__(self) -> int:
        if not os.path.isdir(self.objects):
            return 0
        return sum(
            1 for fan in os.listdir(self.objects)
            for name in os.listdir(os.path.join(self.objects, fan))
            if not name.endswith(".tmp"))

    # ------------------------------------------------------------------
    # Maintenance: listing, verification, garbage collection.
    # ------------------------------------------------------------------
    def _entries(self):
        """Yield (digest, path) for every stored object, sorted."""
        if not os.path.isdir(self.objects):
            return
        for fan in sorted(os.listdir(self.objects)):
            fan_dir = os.path.join(self.objects, fan)
            for name in sorted(os.listdir(fan_dir)):
                yield name, os.path.join(fan_dir, name)

    def verify(self, digest: str) -> tuple[bool, int, str]:
        """Non-destructive checksum check: (ok, payload bytes, reason).

        Unlike :meth:`get`, a corrupt object is *not* unlinked — this is
        the read-only half that ``--store-ls`` and :meth:`gc` share.
        """
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                header = fh.readline().strip()
                payload = fh.read()
        except OSError:
            return False, 0, "absent"
        if hashlib.sha256(payload).hexdigest().encode() != header:
            return False, len(payload), "payload checksum mismatch"
        return True, len(payload), "ok"

    def ls(self) -> list[dict]:
        """Every object with its size and verification verdict."""
        out = []
        for digest, path in self._entries():
            if digest.endswith(".tmp"):
                out.append({"digest": digest[:-4], "bytes":
                            os.path.getsize(path), "ok": False,
                            "reason": "orphan temp file"})
                continue
            ok, size, reason = self.verify(digest)
            out.append({"digest": digest, "bytes": size, "ok": ok,
                        "reason": reason})
        return out

    def gc(self, referenced: set | None = None) -> dict:
        """Prune corrupt objects, orphan temp files, and (when a
        ``referenced`` digest set is given) entries no journal refers to.

        Determinism makes pruning always safe: a pruned unit simply
        re-runs on the next sweep that needs it.  Returns counters
        (``kept``/``pruned_corrupt``/``pruned_unreferenced``/
        ``pruned_tmp``/``bytes_freed``).
        """
        stats = {"kept": 0, "pruned_corrupt": 0, "pruned_unreferenced": 0,
                 "pruned_tmp": 0, "bytes_freed": 0}

        def unlink(path: str, bucket: str) -> None:
            try:
                stats["bytes_freed"] += os.path.getsize(path)
                os.unlink(path)
            except OSError:                          # pragma: no cover
                return
            stats[bucket] += 1

        for digest, path in self._entries():
            if digest.endswith(".tmp"):
                unlink(path, "pruned_tmp")
                continue
            ok, _, _ = self.verify(digest)
            if not ok:
                unlink(path, "pruned_corrupt")
            elif referenced is not None and digest not in referenced:
                unlink(path, "pruned_unreferenced")
            else:
                stats["kept"] += 1
        # Drop fan-out directories emptied by the pruning.
        if os.path.isdir(self.objects):
            for fan in os.listdir(self.objects):
                fan_dir = os.path.join(self.objects, fan)
                if not os.listdir(fan_dir):
                    os.rmdir(fan_dir)
        return stats
