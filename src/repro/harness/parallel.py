"""Sharded parallel suite execution.

:func:`run_suite_parallel` partitions a suite sweep across N worker
processes and merges the shards back into one
:class:`~repro.faults.resilience.SuiteResult` that is indistinguishable
from a serial :func:`~repro.faults.resilience.run_suite` run.

Why this is sound: every per-benchmark outcome is a pure function of
``(benchmark, config kwargs, schedule_seed)`` — each
:class:`~repro.harness.core.Runner` builds a *fresh* VM, and the VM's
scheduler/fault/sanitizer randomness is fully seeded.  Benchmarks never
share guest state, and the quarantine only links *rounds of the same
benchmark* (a failure quarantines later repeats of that name, nothing
else).  So a shard worker owning benchmark ``b`` can compute all of
``b``'s rounds exactly as the serial sweep would, and the parent only
has to stitch the per-``(round, benchmark)`` records back together in
serial iteration order — round-major, registry order within a round.
Counters and race reports ride inside the records, so the merged lists
are byte-identical to a serial sweep's.

Workers are plain ``multiprocessing`` processes (fork server where
available): each builds its own VMs and compile cache.  ``jobs=1`` (or
``None``) falls back to the serial path — same code the tests diff
against.  Plugins that implement the
:class:`~repro.harness.plugins.MergeablePlugin` protocol shard cleanly:
workers run them through the normal hooks, snapshot their per-run state
after every benchmark run, and the parent replays the payloads into its
own instances in serial sweep order.  A plain
:class:`~repro.harness.plugins.HarnessPlugin` holds unmergeable
in-process state, so its presence still forces the serial path.
"""

from __future__ import annotations

import multiprocessing
import traceback

from repro.errors import ReproError, WorkerCrashError
from repro.harness.core import config_name

#: Matches ``repro.faults.resilience.DEFAULT_ITERATION_BUDGET``
#: (imported lazily there — resilience itself imports the harness).
_BUDGET_DEFAULT = object()


def _plugins_mergeable(plugins) -> bool:
    """True when every plugin speaks the MergeablePlugin protocol."""
    from repro.harness.plugins import MergeablePlugin
    return all(isinstance(p, MergeablePlugin) for p in plugins)


def _forkable(sanitize) -> bool:
    """A prepared sanitizer plugin holds shared in-process state; only
    declarative specs (``True`` / a SanitizerConfig) shard cleanly."""
    if sanitize is None or sanitize is True or sanitize is False:
        return True
    from repro.sanitize.hb import SanitizerConfig
    return isinstance(sanitize, SanitizerConfig)


def _resolve(suite):
    """Suite name or iterable of benchmarks -> (benchmarks, name)."""
    if isinstance(suite, str):
        from repro.suites.registry import benchmarks_of
        return benchmarks_of(suite), suite
    benches = tuple(suite)
    return benches, (benches[0].suite if benches else "custom")


def _shard_worker(payload):
    """Run one shard: every round of every owned benchmark.

    Returns ``(index, round, kind, *data)`` records where ``index`` is
    the benchmark's position in the full (registry-ordered) sweep —
    enough for the parent to reconstruct serial iteration order.
    ``kind`` is ``"result"`` (RunResult + optional RaceReport + plugin
    payloads), ``"failure"`` (FailureReport + plugin payloads) or
    ``"skip"`` (quarantined round).

    An unexpected exception inside the worker (a plugin bug, a host
    error — anything the resilience layer doesn't fold into a
    FailureReport) is returned as ``(records_so_far, traceback_text)``
    so the parent can raise a :class:`~repro.errors.WorkerCrashError`
    carrying the worker's real stack instead of a bare pool error.
    """
    try:
        return _shard_worker_inner(payload), None
    except Exception:
        return None, traceback.format_exc()


def _shard_worker_inner(payload):
    from repro.faults.resilience import ResilientRunner

    (indexed_benches, plans, kwargs, repeat, quarantined, plugins) = payload
    records = []
    quarantined = set(quarantined)
    for index, bench in indexed_benches:
        for rnd in range(repeat):
            if bench.name in quarantined:
                records.append((index, rnd, "skip", bench.name))
                continue
            runner = ResilientRunner(
                bench, jit=kwargs["jit"], cores=kwargs["cores"],
                schedule_seed=kwargs["schedule_seed"],
                plugins=plugins, faults=plans[bench.name],
                iteration_budget=kwargs["iteration_budget"],
                max_retries=kwargs["max_retries"],
                sanitize=kwargs["sanitize"],
                engine=kwargs.get("engine", "threaded"),
                verify_ir=kwargs.get("verify_ir", False))
            outcome = runner.run(warmup=kwargs["warmup"],
                                 measure=kwargs["measure"])
            payloads = tuple(p.snapshot_run() for p in plugins)
            if outcome.ok:
                result = outcome.result
                result.vm = None    # VMs don't pickle (and don't merge)
                records.append(
                    (index, rnd, "result", result, outcome.race_report,
                     payloads))
            else:
                records.append(
                    (index, rnd, "failure", outcome.failure, payloads))
                quarantined.add(bench.name)
    return records


def run_suite_parallel(suite="renaissance", *, jobs: int | None = None,
                       jit="graal", cores: int = 8, schedule_seed: int = 0,
                       warmup: int | None = None, measure: int | None = None,
                       continue_on_error: bool = True, faults=None,
                       iteration_budget=_BUDGET_DEFAULT,
                       max_retries: int = 2, repeat: int = 1,
                       quarantine=None,
                       plugins: tuple = (), sanitize=None,
                       engine: str = "threaded", verify_ir: bool = False):
    """:func:`~repro.faults.resilience.run_suite` across worker processes.

    ``jobs`` is the worker-process count (``None``/``1`` = serial,
    in-process).  All other arguments match :func:`run_suite`; every
    worker seeds its VMs with the same ``schedule_seed`` the serial
    sweep would use, so the merged result is byte-identical (the
    equivalence is asserted by ``tests/test_parallel.py``).
    """
    from repro.faults.resilience import (
        DEFAULT_ITERATION_BUDGET,
        Quarantine,
        SuiteResult,
        run_suite,
    )

    if iteration_budget is _BUDGET_DEFAULT:
        iteration_budget = DEFAULT_ITERATION_BUDGET
    serial_kwargs = dict(
        jit=jit, cores=cores, schedule_seed=schedule_seed, warmup=warmup,
        measure=measure, continue_on_error=continue_on_error, faults=faults,
        iteration_budget=iteration_budget, max_retries=max_retries,
        repeat=repeat, quarantine=quarantine, plugins=plugins,
        sanitize=sanitize, engine=engine, verify_ir=verify_ir)
    if jobs is None or jobs <= 1 or not _forkable(sanitize) \
            or (plugins and not _plugins_mergeable(plugins)):
        return run_suite(suite, **serial_kwargs)

    benches, suite_name = _resolve(suite)
    from repro.faults.plan import FaultPlan
    if isinstance(faults, FaultPlan) or faults is None:
        plans = {b.name: faults for b in benches}
    else:
        plans = {b.name: faults.get(b.name) for b in benches}

    out = SuiteResult(
        suite_name, config_name(None if sanitize else jit),
        quarantine=quarantine if quarantine is not None else Quarantine())
    if not benches:
        return out

    pre_quarantined = tuple(
        b.name for b in benches if b.name in out.quarantine)
    kwargs = dict(jit=jit, cores=cores, schedule_seed=schedule_seed,
                  warmup=warmup, measure=measure,
                  iteration_budget=iteration_budget,
                  max_retries=max_retries, sanitize=sanitize,
                  engine=engine, verify_ir=verify_ir)
    plugins = tuple(plugins)
    jobs = min(jobs, len(benches))
    shards = [
        ([(i, b) for i, b in enumerate(benches) if i % jobs == shard],
         plans, kwargs, repeat, pre_quarantined, plugins)
        for shard in range(jobs)
    ]

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:                              # pragma: no cover
        ctx = multiprocessing.get_context("spawn")
    # Context-manager discipline: ``with`` terminates the pool on every
    # exit path (a worker crash must not leak processes), and ``join``
    # in the normal path reaps the workers before we touch the records.
    with ctx.Pool(processes=jobs) as pool:
        try:
            shard_results = pool.map(_shard_worker, shards)
        except Exception as exc:
            # The pool machinery itself failed (e.g. a worker died so
            # hard it couldn't even return its traceback).
            raise WorkerCrashError(
                f"suite {suite_name}: shard worker pool failed: {exc}",
                worker_traceback=traceback.format_exc()) from exc
        pool.close()
        pool.join()
    for shard_records, worker_tb in shard_results:
        if worker_tb is not None:
            raise WorkerCrashError(
                f"suite {suite_name}: shard worker raised:\n{worker_tb}",
                worker_traceback=worker_tb)

    # Stitch shards back into serial iteration order: round-major,
    # registry order within each round — the exact order the serial
    # sweep appends to its result lists.
    records = [r for shard, _ in shard_results for r in shard]
    records.sort(key=lambda r: (r[1], r[0]))
    first_error = None
    for record in records:
        kind = record[2]
        if kind == "result":
            out.results.append(record[3])
            if record[4] is not None:
                out.race_reports.append(record[4])
            for plugin, shard_payload in zip(plugins, record[5]):
                plugin.absorb_run(shard_payload)
        elif kind == "failure":
            report = record[3]
            out.failures.append(report)
            out.quarantine.add(report)
            for plugin, shard_payload in zip(plugins, record[4]):
                plugin.absorb_run(shard_payload)
            if first_error is None:
                first_error = report
        else:
            out.skipped.append(record[3])
    if first_error is not None and not continue_on_error:
        raise ReproError(
            f"suite {suite_name} aborted on "
            f"{first_error.benchmark}: {first_error.message}")
    return out
