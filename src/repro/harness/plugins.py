"""Measurement-plugin interface (paper Section 2.2).

"The harness also provides an interface for custom measurement plugins,
which can latch onto benchmark execution events" — plugins receive the
VM around runs and iterations.  The metrics profiler
(:class:`repro.metrics.profiler.MetricsPlugin`) is the main client, as in
the paper.
"""

from __future__ import annotations


class HarnessPlugin:
    """Base class; override any subset of the hooks."""

    def before_run(self, vm, benchmark) -> None:
        """Called once, after program load, before warmup."""

    def after_run(self, vm, benchmark, result) -> None:
        """Called once, after the last measured iteration."""

    def before_iteration(self, vm, benchmark, index: int,
                         warmup: bool) -> None:
        """Called before each iteration (warmup included)."""

    def after_iteration(self, vm, benchmark, index: int, warmup: bool,
                        stats: dict) -> None:
        """Called after each iteration with its wall/work/cpu stats."""

    def on_fault(self, vm, benchmark, report) -> None:
        """Called by the resilience layer when a run fails for good.

        ``report`` is a :class:`repro.faults.FailureReport`; ``vm`` is
        the VM of the failing attempt (may be mid-iteration).  Not
        called for failures that a reseeded retry recovered from.
        """


class MergeablePlugin(HarnessPlugin):
    """A plugin that survives sharded suite execution (``jobs=N``).

    The parallel runner (:mod:`repro.harness.parallel`) pickles plugin
    instances into each worker, where they observe that shard's runs
    through the normal hooks.  After every benchmark run the worker
    calls :meth:`snapshot_run` and ships the payload back; the parent
    replays the payloads into *its* instance via :meth:`absorb_run` in
    serial sweep order (round-major, registry order), so the parent
    plugin ends up byte-identical to a serial sweep's.

    Durable sweeps (:mod:`repro.harness.durable`) lean on the same
    protocol one level harder: each unit's snapshot payloads are
    *persisted* into the content-addressed result store alongside the
    RunResult, so after a crash ``--resume`` absorbs the payloads of
    already-completed units straight from disk — trace recordings and
    metrics histories survive the crash and merge byte-identically.
    Execution always happens on pickled clones of the caller's plugin
    instances; the originals only ever absorb, in serial sweep order.

    Contract: :meth:`snapshot_run` returns a picklable payload covering
    exactly the runs since the previous snapshot (and resets that
    per-run state); :meth:`absorb_run` folds one payload in, and the
    fold must depend only on payload order — never on which worker
    produced it (nor on whether it took a detour through the store).
    Plugins that cannot express their state this way stay plain
    :class:`HarnessPlugin`\\ s, force the serial path, and are rejected
    by durable sweeps.
    """

    def snapshot_run(self):
        """Worker side: serializable state of the just-finished run."""
        return None

    def absorb_run(self, payload) -> None:
        """Parent side: fold one shard payload in, in serial order."""


class FaultLogPlugin(HarnessPlugin):
    """Collects every FailureReport the resilience layer produces."""

    def __init__(self) -> None:
        self.reports: list = []

    def on_fault(self, vm, benchmark, report) -> None:
        self.reports.append(report)


class IterationLogPlugin(HarnessPlugin):
    """Example plugin: records (index, warmup, wall) tuples."""

    def __init__(self) -> None:
        self.log: list[tuple[int, bool, int]] = []

    def after_iteration(self, vm, benchmark, index, warmup, stats) -> None:
        self.log.append((index, warmup, stats["wall"]))
