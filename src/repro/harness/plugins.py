"""Measurement-plugin interface (paper Section 2.2).

"The harness also provides an interface for custom measurement plugins,
which can latch onto benchmark execution events" — plugins receive the
VM around runs and iterations.  The metrics profiler
(:class:`repro.metrics.profiler.MetricsPlugin`) is the main client, as in
the paper.
"""

from __future__ import annotations


class HarnessPlugin:
    """Base class; override any subset of the hooks."""

    def before_run(self, vm, benchmark) -> None:
        """Called once, after program load, before warmup."""

    def after_run(self, vm, benchmark, result) -> None:
        """Called once, after the last measured iteration."""

    def before_iteration(self, vm, benchmark, index: int,
                         warmup: bool) -> None:
        """Called before each iteration (warmup included)."""

    def after_iteration(self, vm, benchmark, index: int, warmup: bool,
                        stats: dict) -> None:
        """Called after each iteration with its wall/work/cpu stats."""

    def on_fault(self, vm, benchmark, report) -> None:
        """Called by the resilience layer when a run fails for good.

        ``report`` is a :class:`repro.faults.FailureReport`; ``vm`` is
        the VM of the failing attempt (may be mid-iteration).  Not
        called for failures that a reseeded retry recovered from.
        """


class FaultLogPlugin(HarnessPlugin):
    """Collects every FailureReport the resilience layer produces."""

    def __init__(self) -> None:
        self.reports: list = []

    def on_fault(self, vm, benchmark, report) -> None:
        self.reports.append(report)


class IterationLogPlugin(HarnessPlugin):
    """Example plugin: records (index, warmup, wall) tuples."""

    def __init__(self) -> None:
        self.log: list[tuple[int, bool, int]] = []

    def after_iteration(self, vm, benchmark, index, warmup, stats) -> None:
        self.log.append((index, warmup, stats["wall"]))
