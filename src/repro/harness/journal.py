"""Write-ahead journal for durable sweeps.

Every state transition of a durable sweep (unit started, stage entered,
unit completed/failed/skipped, shard spawned/killed/respawned, drain on
SIGINT) is appended here *before* the controller acts on it, so a
``kill -9`` at any instant leaves a prefix that fully describes what
had happened.  The journal is diagnostic and advisory: the
content-addressed :class:`~repro.harness.store.ResultStore` is the
authority on which units are complete (its payloads are checksummed),
while the journal carries the sweep fingerprint (resume refuses a
mismatched spec), the supervision history, and the counters.

Format: one record per line, ``crc32-hex space canonical-json``::

    3f2a9c01 {"kind":"unit-done","seq":12,...}

- canonical JSON (sorted keys, fixed separators) makes identical sweeps
  byte-identical journals (timestamps are explicitly excluded from the
  checksummed identity fields; host times live under ``t`` and are for
  humans only),
- the per-line CRC detects bit flips: a corrupt line is *skipped* and
  reported, never fatal — losing a journal record at worst re-runs a
  unit,
- a truncated tail (the ``kill -9`` case: a partial last line with no
  newline or a failing checksum) is tolerated the same way.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field


@dataclass
class Replay:
    """Decoded journal contents plus everything wrong with them."""

    records: list = field(default_factory=list)
    #: (line_number, reason) for every line that failed to decode.
    corrupt: list = field(default_factory=list)
    #: One past the highest intact sequence number (0 for a fresh log).
    next_seq: int = 0

    def of_kind(self, kind: str) -> list:
        return [r for r in self.records if r.get("kind") == kind]

    def last_of_kind(self, kind: str) -> dict | None:
        found = self.of_kind(kind)
        return found[-1] if found else None


def _encode(record: dict) -> str:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x} {body}\n"


def _decode(line: str) -> dict:
    """One journal line -> record dict; raises ValueError on corruption."""
    if " " not in line:
        raise ValueError("no checksum separator")
    checksum, body = line.split(" ", 1)
    if len(checksum) != 8:
        raise ValueError("malformed checksum field")
    if zlib.crc32(body.encode()) & 0xFFFFFFFF != int(checksum, 16):
        raise ValueError("checksum mismatch")
    record = json.loads(body)
    if not isinstance(record, dict) or "kind" not in record:
        raise ValueError("record is not an object with a kind")
    return record


class Journal:
    """Append-only, checksummed, crash-tolerant event log."""

    def __init__(self, path, *, fsync: bool = False) -> None:
        self.path = str(path)
        self.fsync = fsync
        self._seq = 0
        self._fh = None

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def open(self) -> Journal:
        """Open for appending, continuing the sequence of a prior run."""
        if os.path.exists(self.path):
            self._seq = self.replay().next_seq
        self._fh = open(self.path, "a", encoding="utf-8")
        return self

    def append(self, kind: str, **fields) -> dict:
        """Write one record durably; returns the record (with seq)."""
        if self._fh is None:
            self.open()
        record = {"kind": kind, "seq": self._seq, **fields}
        self._fh.write(_encode(record))
        self._fh.flush()
        if self.fsync:                               # pragma: no cover
            os.fsync(self._fh.fileno())
        self._seq += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def compact(self, records: list[dict]) -> None:
        """Atomically rewrite the journal to hold only ``records``.

        Journals are append-only during a run, so across many resumes
        (or a long-lived service) replay cost grows without bound.
        Compaction rewrites the file wholesale — resequenced from 0,
        temp file + ``os.replace`` so a crash mid-compaction leaves the
        old journal intact.  Callers pick what survives (e.g. the sweep
        fingerprint and one ``unit-done`` per digest); everything else
        is historical narration the store has already superseded.
        """
        was_open = self._fh is not None
        self.close()
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for seq, record in enumerate(records):
                body = dict(record)
                body["seq"] = seq
                fh.write(_encode(body))
            fh.flush()
        os.replace(tmp, self.path)
        self._seq = len(records)
        if was_open:
            self._fh = open(self.path, "a", encoding="utf-8")

    def __enter__(self) -> Journal:
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def replay(self) -> Replay:
        """Decode every intact record; corruption is reported, not fatal."""
        out = Replay()
        if not os.path.exists(self.path):
            out.next_seq = 0
            return out
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            raw = fh.read()
        lines = raw.split("\n")
        # A crash mid-append leaves a final line without its newline;
        # splitting gives it as the last element (or "" after a clean
        # append).  Treat an incomplete final line as a truncated tail.
        for lineno, line in enumerate(lines, start=1):
            if line == "":
                continue
            truncated_tail = (lineno == len(lines) and not raw.endswith("\n"))
            try:
                out.records.append(_decode(line))
            except (ValueError, json.JSONDecodeError) as exc:
                reason = "truncated tail" if truncated_tail else str(exc)
                out.corrupt.append((lineno, reason))
        out.next_seq = (max((r["seq"] for r in out.records), default=-1) + 1)
        return out
