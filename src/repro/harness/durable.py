"""Durable sweeps: crash-safe, resumable suite execution.

:func:`run_suite_durable` wraps the serial and sharded suite paths with
the durability layer the benchmark-as-a-service roadmap item needs:

- every (suite, benchmark, config, seed, round, engine) **unit** runs
  through an explicit stage lifecycle — ``prepare → run → collect →
  teardown`` — with per-stage host-wall-clock deadlines and
  infrastructure retry (exponential backoff + deterministic jitter) *on
  top of* the benchmark-level retry-with-reseed that
  :class:`~repro.faults.resilience.ResilientRunner` already does,
- all state flows through a write-ahead :class:`~repro.harness.journal.
  Journal` plus a content-addressed :class:`~repro.harness.store.
  ResultStore`; a ``kill -9`` at any instant loses at most the units in
  flight, and ``--resume`` serves completed units from the store so the
  merged :class:`~repro.faults.resilience.SuiteResult` is byte-identical
  to an uninterrupted sweep,
- the parallel path (``jobs=N``) gains worker **supervision**: one
  private pipe per worker (no shared queues a dying worker could poison),
  heartbeats, hung/crashed-shard detection, kill-and-respawn with the
  in-flight unit returned to the queue, and graceful SIGINT/SIGTERM
  draining that journals in-flight state before raising
  :class:`~repro.errors.SweepInterrupted`,
- a failed unit is recorded, persisted, and quarantined — never fatal
  (``continue_on_error=False`` raises only after the merge, like the
  sharded path).

Byte-identity holds because unit outcomes are pure functions of their
keys (fresh VM per run, fully seeded), execution happens on *cloned*
plugin instances, and the caller's plugins only ever absorb the per-unit
:class:`~repro.harness.plugins.MergeablePlugin` snapshots in serial
sweep order (round-major, registry order) at merge time — whether a
snapshot came from this process, a worker, or the store on resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.errors import (
    DurableSweepError,
    ReproError,
    StageTimeout,
    SweepInterrupted,
)
from repro.faults.plan import FaultPlan
from repro.faults.report import FailureReport
from repro.harness.core import GuestBenchmark, config_name
from repro.harness.journal import Journal
from repro.jvm.tier2 import TIER_LADDERS
from repro.harness.store import (
    ResultStore,
    StoreLock,
    canonical_digest,
    decode_outcome,
    encode_outcome,
)

#: Stage lifecycle, in order.  ``prepare`` builds the runner and warms
#: the compile cache, ``run`` executes warmup+measure through the
#: resilience layer, ``collect`` snapshots plugins and packs the
#: outcome, ``teardown`` drops VM references.
STAGES = ("prepare", "run", "collect", "teardown")

_BUDGET_DEFAULT = object()


@dataclass
class DurablePolicy:
    """Tunables of the durability layer (not of the benchmarks)."""

    #: Infrastructure retries per stage (host-side exceptions only —
    #: benchmark failures are handled by the resilience layer and are
    #: deterministic, so re-running them would reproduce the failure).
    max_stage_retries: int = 2
    #: Exponential backoff: ``base * 2**attempt`` capped at ``cap``,
    #: plus deterministic jitter derived from (unit digest, stage,
    #: attempt) so replays sleep identically.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Host-wall-clock deadline per stage (seconds); None = unlimited.
    #: On the parallel path the supervisor kills a worker whose stage
    #: overruns; serially the overrun is detected after the stage ends.
    stage_deadlines: dict | None = None
    #: Worker heartbeat cadence and the staleness that declares a
    #: worker dead even when the OS still lists the process.
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 15.0
    #: Total dispatch attempts per unit before the controller gives up
    #: and synthesizes a quarantining FailureReport (covers workers
    #: that crash or hang deterministically on one unit).
    max_unit_attempts: int = 2
    #: How long graceful draining waits for in-flight units on
    #: SIGINT/SIGTERM before killing the workers outright.
    drain_timeout: float = 30.0
    #: fsync journal appends (slower, survives power loss too).
    fsync: bool = False
    #: Testing hook: behave as if SIGINT arrived after this many units
    #: were executed and persisted in this session.
    abort_after_units: int | None = None

    def deadline_for(self, stage: str) -> float | None:
        return (self.stage_deadlines or {}).get(stage)

    def backoff_delay(self, digest: str, stage: str, attempt: int) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        seed = hashlib.sha256(
            f"{digest}:{stage}:{attempt}".encode()).hexdigest()[:8]
        return base + (int(seed, 16) / 0xFFFFFFFF) * self.backoff_base


@dataclass(frozen=True)
class SweepUnit:
    """One schedulable cell of the sweep matrix."""

    index: int                  # registry position within the suite
    round: int                  # sweep repetition this cell belongs to
    benchmark: GuestBenchmark
    digest: str                 # content address of the unit key

    @property
    def name(self) -> str:
        return self.benchmark.name


# ----------------------------------------------------------------------
# Unit keys and fingerprints.
# ----------------------------------------------------------------------
def _sanitize_fp(sanitize) -> object:
    if sanitize is None or sanitize is False:
        return None
    if sanitize is True:
        return "default"
    return repr(sanitize)           # dataclass repr is deterministic


def _faults_fp(faults) -> object:
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults.to_dict()
    return {name: (plan.to_dict() if plan is not None else None)
            for name, plan in sorted(faults.items())}


def _config_fingerprint(kwargs: dict, faults, plugins: tuple) -> dict:
    """The run parameters a unit's outcome depends on.

    Plugins are part of the identity: an attached flight recorder or
    metrics profiler changes the VM's counters, so units recorded under
    one plugin stack must not be served to a resume with another (the
    stack is fingerprinted by class; reconfiguring the *same* plugin
    class differently is on the caller).  Normalized through a JSON
    round-trip so the in-memory fingerprint compares equal to one
    replayed from the journal (tuples -> lists).
    """
    fingerprint = {
        "plugins": [f"{type(p).__module__}.{type(p).__qualname__}"
                    for p in plugins],
        "schema": "repro-sweep/1",
        "config": config_name(
            None if kwargs["sanitize"] else kwargs["jit"]),
        "cores": kwargs["cores"],
        "schedule_seed": kwargs["schedule_seed"],
        "warmup": kwargs["warmup"],
        "measure": kwargs["measure"],
        "iteration_budget": kwargs["iteration_budget"],
        "max_retries": kwargs["max_retries"],
        "sanitize": _sanitize_fp(kwargs["sanitize"]),
        "faults": _faults_fp(faults),
        # The host engine is part of the unit identity on purpose: even
        # though engines are byte-identical, serving a tier1-run unit to
        # a reference resume would silently mask an identity bug.
        # ``verify_ir`` is deliberately NOT part of the identity: the
        # verifier either raises or changes nothing, so a verified unit
        # is byte-identical to an unverified one and may serve a resume
        # either way.
        "engine": kwargs.get("engine", "threaded"),
        # The engine's full promotion ladder rides along so a journal
        # written before a tier was added (or with a different ladder
        # for the same engine name) never serves units to a resume that
        # would now run under different tiering.
        "tier_ladder": list(TIER_LADDERS.get(
            kwargs.get("engine", "threaded"), ())),
    }
    return json.loads(json.dumps(fingerprint, sort_keys=True))


def unit_digest(bench: GuestBenchmark, rnd: int, fingerprint: dict) -> str:
    key = {
        "benchmark": bench.name,
        "source": hashlib.sha256(bench.source.encode()).hexdigest(),
        "entry": bench.entry,
        "args": repr(bench.args),
        "expected": repr(bench.expected),
        "round": rnd,
        "sweep": fingerprint,
    }
    return canonical_digest(key)


def _clone_plugins(plugins: tuple) -> tuple:
    """Execution copies: the caller's instances only absorb at merge."""
    return pickle.loads(pickle.dumps(tuple(plugins)))


# ----------------------------------------------------------------------
# Stage lifecycle (runs in the controller for serial sweeps, in a
# worker process for jobs=N).
# ----------------------------------------------------------------------
def execute_unit(unit: SweepUnit, kwargs: dict, plan, plugins: tuple,
                 policy: DurablePolicy, notify=None) -> dict:
    """Run one unit through prepare → run → collect → teardown.

    Returns an outcome dict (kind ``"result"`` or ``"failure"``).  Host
    exceptions retry with backoff+jitter up to ``max_stage_retries`` and
    then become a synthesized, quarantining FailureReport — a sick stage
    never kills the sweep.  Benchmark-level failures arrive here already
    folded into a FailureReport by the resilience layer.
    """
    from repro.faults.resilience import ResilientRunner

    state: dict = {}
    stage_trace: list = []

    def _prepare():
        try:                          # warm the compile cache; a real
            unit.benchmark.compile()  # compile error surfaces in run()
        except ReproError:            # through the resilience layer so
            pass                      # the report matches a plain sweep
        state["runner"] = ResilientRunner(
            unit.benchmark, jit=kwargs["jit"], cores=kwargs["cores"],
            schedule_seed=kwargs["schedule_seed"], plugins=plugins,
            faults=plan, iteration_budget=kwargs["iteration_budget"],
            max_retries=kwargs["max_retries"], sanitize=kwargs["sanitize"],
            engine=kwargs.get("engine", "threaded"),
            verify_ir=kwargs.get("verify_ir", False))

    def _run():
        state["outcome"] = state["runner"].run(
            warmup=kwargs["warmup"], measure=kwargs["measure"])

    def _collect():
        payloads = tuple(p.snapshot_run() for p in plugins)
        res = state["outcome"]
        if res.ok:
            res.result.vm = None      # VMs neither pickle nor merge
            state["packed"] = {
                "kind": "result", "result": res.result,
                "race": res.race_report, "plugins": payloads,
                "retries": res.retries}
        else:
            state["packed"] = {
                "kind": "failure", "failure": res.failure,
                "plugins": payloads}

    def _teardown():
        state.pop("runner", None)
        state.pop("outcome", None)

    stage_fns = {"prepare": _prepare, "run": _run,
                 "collect": _collect, "teardown": _teardown}
    for stage in STAGES:
        try:
            _run_stage(unit, stage, stage_fns[stage], policy,
                       stage_trace, notify)
        except Exception as exc:      # infra failure after retries
            report = FailureReport(
                benchmark=unit.name,
                config=config_name(
                    None if kwargs["sanitize"] else kwargs["jit"]),
                error_type=type(exc).__name__,
                message=str(exc),
                phase=f"stage:{stage}",
                schedule_seed=kwargs["schedule_seed"],
                extra={"stage": stage,
                       "traceback": traceback.format_exc()})
            return {"kind": "failure", "failure": report, "plugins": None,
                    "stages": tuple(stage_trace)}
    packed = state["packed"]
    packed["stages"] = tuple(stage_trace)
    return packed


def _run_stage(unit, stage, fn, policy, stage_trace, notify) -> None:
    deadline = policy.deadline_for(stage)
    attempt = 0
    while True:
        if notify is not None:
            notify(stage, attempt)
        started = time.perf_counter()
        try:
            fn()
        except ReproError:
            raise                     # deterministic — retry is futile
        except Exception:
            if attempt >= policy.max_stage_retries:
                raise
            time.sleep(policy.backoff_delay(unit.digest, stage, attempt))
            attempt += 1
            continue
        elapsed = time.perf_counter() - started
        stage_trace.append((stage, attempt))
        if deadline is not None and elapsed > deadline:
            # Serial path: the overrun is only observable after the
            # fact (the parallel supervisor kills mid-stage instead).
            raise StageTimeout(
                f"{unit.name} stage {stage} took {elapsed:.3f}s "
                f"(deadline {deadline:.3f}s)",
                stage=stage, deadline=deadline, elapsed=elapsed)
        return


# ----------------------------------------------------------------------
# Worker process (jobs=N path).
# ----------------------------------------------------------------------
def _durable_worker(conn, kwargs, plans, plugins, policy) -> None:
    """Pull units off a private pipe, heartbeat, ship outcomes back."""
    send_lock = threading.Lock()

    def send(msg) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):      # parent is gone
                os._exit(1)

    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(policy.heartbeat_interval):
            send(("hb",))

    threading.Thread(target=beat, daemon=True).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        unit = msg[1]
        try:
            outcome = execute_unit(
                unit, kwargs, plans.get(unit.name), plugins, policy,
                notify=lambda stage, attempt: send(
                    ("stage", unit.digest, stage, attempt)))
            send(("done", unit.digest, encode_outcome(outcome)))
        except BaseException:         # truly unexpected: report and die
            send(("crash", unit.digest, traceback.format_exc()))
            raise
    stop_beating.set()
    conn.close()


class _Worker:
    """Parent-side view of one supervised worker process."""

    def __init__(self, wid: int, proc, conn) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.inflight: SweepUnit | None = None
        self.last_seen = time.monotonic()
        self.stage = None
        self.stage_attempt = 0
        self.stage_started = time.monotonic()


# ----------------------------------------------------------------------
# The controller.
# ----------------------------------------------------------------------
class DurableSweep:
    """Journaled, resumable, supervised execution of one suite sweep."""

    def __init__(self, suite, *, dir, resume: bool = False,
                 jobs: int | None = None,
                 policy: DurablePolicy | None = None,
                 jit="graal", cores: int = 8, schedule_seed: int = 0,
                 warmup: int | None = None, measure: int | None = None,
                 continue_on_error: bool = True, faults=None,
                 iteration_budget=_BUDGET_DEFAULT, max_retries: int = 2,
                 repeat: int = 1, quarantine=None, plugins: tuple = (),
                 sanitize=None, engine: str = "threaded",
                 verify_ir: bool = False) -> None:
        from repro.faults.resilience import DEFAULT_ITERATION_BUDGET
        from repro.harness.plugins import MergeablePlugin

        if iteration_budget is _BUDGET_DEFAULT:
            iteration_budget = DEFAULT_ITERATION_BUDGET
        plugins = tuple(plugins)
        if not all(isinstance(p, MergeablePlugin) for p in plugins):
            raise DurableSweepError(
                "durable sweeps persist plugin state into the store; "
                "every plugin must implement MergeablePlugin")
        from repro.harness.parallel import _forkable, _resolve
        if not _forkable(sanitize):
            raise DurableSweepError(
                "pass sanitize=True or a SanitizerConfig (a prepared "
                "SanitizerPlugin holds unshareable in-process state)")
        self.benches, self.suite_name = _resolve(suite)
        self.dir = str(dir)
        self.resume = resume
        self.jobs = jobs
        self.policy = policy or DurablePolicy()
        self.kwargs = dict(
            jit=jit, cores=cores, schedule_seed=schedule_seed,
            warmup=warmup, measure=measure,
            iteration_budget=iteration_budget, max_retries=max_retries,
            sanitize=sanitize, engine=engine, verify_ir=verify_ir)
        self.continue_on_error = continue_on_error
        self.repeat = repeat
        self.quarantine = quarantine
        self.plugins = plugins
        if isinstance(faults, FaultPlan) or faults is None:
            self.plans = {b.name: faults for b in self.benches}
        else:
            self.plans = {b.name: faults.get(b.name) for b in self.benches}
        self.fingerprint = _config_fingerprint(self.kwargs, faults, plugins)
        self.config = config_name(None if sanitize else jit)

        self.units: dict[tuple[int, int], SweepUnit] = {}
        for rnd in range(repeat):
            for idx, bench in enumerate(self.benches):
                self.units[(idx, rnd)] = SweepUnit(
                    idx, rnd, bench,
                    unit_digest(bench, rnd, self.fingerprint))
        self.outcomes: dict[str, dict] = {}
        self.ready: list[SweepUnit] = []
        self.failed_bench: set[str] = set()
        self.stats = {
            "units": len(self.units), "executed": 0,
            "served_from_store": 0, "failed": 0, "skipped": 0,
            "respawns": 0, "stage_retries": 0,
            "corrupt_journal_entries": 0, "corrupt_store_entries": 0,
            "interrupted": False,
        }
        self._signal: str | None = None
        self._draining = False

    # ------------------------------------------------------------------
    # Setup / teardown.
    # ------------------------------------------------------------------
    def _open(self) -> None:
        os.makedirs(self.dir, exist_ok=True)
        # Single-writer discipline: a concurrent controller (another
        # sweep, or a repro.serve service) on the same directory would
        # interleave journal records; fail fast instead.
        self.lock = StoreLock(self.dir).acquire(
            owner=f"durable sweep of {self.suite_name}")
        journal_path = os.path.join(self.dir, "journal.wal")
        try:
            if os.path.exists(journal_path) and not self.resume:
                raise DurableSweepError(
                    f"{self.dir} already holds a sweep journal; pass "
                    f"resume=True (CLI: --resume) to continue it")
            self.store = ResultStore(self.dir)
            self.journal = Journal(journal_path, fsync=self.policy.fsync)
            if self.resume and os.path.exists(journal_path):
                replay = self.journal.replay()
                self.stats["corrupt_journal_entries"] = len(replay.corrupt)
                begin = replay.last_of_kind("sweep-begin")
                if begin is not None \
                        and begin.get("fingerprint") is not None \
                        and begin["fingerprint"] != self.fingerprint:
                    raise DurableSweepError(
                        "resume spec mismatch: this directory was written "
                        "by a sweep with different run parameters "
                        f"({begin['fingerprint']} != {self.fingerprint})")
        except Exception:
            self.lock.release()
            raise
        self.journal.open()
        self.journal.append(
            "sweep-begin", suite=self.suite_name,
            benchmarks=[b.name for b in self.benches],
            repeat=self.repeat, jobs=self.jobs or 1, resume=self.resume,
            fingerprint=self.fingerprint, t=round(time.time(), 3))

    def _install_signals(self):
        if threading.current_thread() is not threading.main_thread():
            return None

        def handler(signum, frame):
            self._signal = signal.Signals(signum).name

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):           # pragma: no cover
                pass
        return previous

    # ------------------------------------------------------------------
    # Scheduling: rounds of one benchmark form a chain (a failure
    # quarantines the later rounds), so round r+1 is only schedulable
    # once round r resolved.
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        pre = self.quarantine
        for idx, bench in enumerate(self.benches):
            if pre is not None and bench.name in pre:
                continue              # every round is a merge-time skip
            self._schedule(self.units[(idx, 0)])

    def _schedule(self, unit: SweepUnit) -> None:
        payload = self.store.get(unit.digest)
        if payload is not None:
            try:
                outcome = decode_outcome(payload)
            except Exception:                       # pragma: no cover
                self.store.corrupt.append((unit.digest, "undecodable"))
                outcome = None
            if outcome is not None:
                self.stats["served_from_store"] += 1
                self.journal.append(
                    "unit-cached", digest=unit.digest, benchmark=unit.name,
                    round=unit.round, outcome=outcome["kind"])
                self._resolve(unit, outcome)
                return
        self.ready.append(unit)

    def _resolve(self, unit: SweepUnit, outcome: dict) -> None:
        self.outcomes[unit.digest] = outcome
        if outcome["kind"] == "failure":
            self.failed_bench.add(unit.name)
            self.stats["failed"] += 1
        nxt = (unit.index, unit.round + 1)
        if unit.round + 1 < self.repeat and unit.name not in self.failed_bench:
            self._schedule(self.units[nxt])

    def _persist(self, unit: SweepUnit, outcome: dict,
                 payload: bytes | None = None) -> None:
        if payload is None:
            payload = encode_outcome(outcome)
        self.store.put(unit.digest, payload)
        self.stats["executed"] += 1
        self.journal.append(
            "unit-done", digest=unit.digest, benchmark=unit.name,
            round=unit.round, outcome=outcome["kind"],
            retries=outcome.get("retries", 0))
        self._resolve(unit, outcome)
        abort_after = self.policy.abort_after_units
        if abort_after is not None and self.stats["executed"] >= abort_after:
            self._signal = self._signal or "test-abort"

    # ------------------------------------------------------------------
    # Serial execution.
    # ------------------------------------------------------------------
    def _run_serial(self) -> None:
        exec_plugins = _clone_plugins(self.plugins)

        def notify_factory(unit):
            def notify(stage, attempt):
                if attempt > 0:
                    self.stats["stage_retries"] += 1
                self.journal.append(
                    "stage", digest=unit.digest, stage=stage,
                    attempt=attempt, worker=0)
            return notify

        while self.ready:
            if self._signal is not None:
                self._drain_serial()
                return
            self.ready.sort(key=lambda u: (u.round, u.index))
            unit = self.ready.pop(0)
            self.journal.append(
                "unit-begin", digest=unit.digest, benchmark=unit.name,
                round=unit.round, worker=0)
            outcome = execute_unit(
                unit, self.kwargs, self.plans.get(unit.name),
                exec_plugins, self.policy, notify=notify_factory(unit))
            self._persist(unit, outcome)
        if self._signal is not None:
            self._drain_serial()

    def _drain_serial(self) -> None:
        self.journal.append(
            "drain-begin", signal=self._signal,
            inflight=[], pending=[u.digest for u in self.ready])
        self._interrupt()

    def _interrupt(self) -> None:
        self.stats["interrupted"] = True
        self.journal.append("sweep-interrupt", signal=self._signal,
                            stats={k: v for k, v in self.stats.items()
                                   if k != "interrupted"})
        raise SweepInterrupted(
            f"sweep interrupted by {self._signal}; resume with "
            f"--resume {self.dir}", stats=self.stats)

    # ------------------------------------------------------------------
    # Supervised parallel execution.
    # ------------------------------------------------------------------
    def _run_parallel(self) -> None:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:                          # pragma: no cover
            ctx = multiprocessing.get_context("spawn")
        self._ctx = ctx
        exec_plugins = _clone_plugins(self.plugins)
        self._worker_args = (self.kwargs, self.plans, exec_plugins,
                             self.policy)
        jobs = min(self.jobs, max(1, len(self.ready)))
        workers: dict[int, _Worker] = {}
        self._next_wid = 0
        attempts: dict[str, int] = {}

        def spawn() -> _Worker:
            wid = self._next_wid
            self._next_wid += 1
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_durable_worker,
                args=(child_conn,) + self._worker_args, daemon=True)
            proc.start()
            child_conn.close()
            worker = _Worker(wid, proc, parent_conn)
            workers[wid] = worker
            self.journal.append("shard-spawn", worker=wid, pid=proc.pid)
            return worker

        def retire(worker: _Worker, reason: str, *, respawn: bool,
                   worker_tb: str = "") -> None:
            """Kill/bury one worker; requeue or fail its in-flight unit."""
            self.journal.append(
                "shard-exit", worker=worker.wid, pid=worker.proc.pid,
                reason=reason)
            if worker.proc.is_alive():
                worker.proc.kill()
            worker.proc.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:                         # pragma: no cover
                pass
            workers.pop(worker.wid, None)
            unit = worker.inflight
            if unit is not None:
                attempts[unit.digest] = attempts.get(unit.digest, 0) + 1
                if attempts[unit.digest] >= self.policy.max_unit_attempts:
                    self._fail_unit(unit, worker, reason, worker_tb)
                else:
                    self.ready.insert(0, unit)
            if respawn and not self._draining and (self.ready or unit):
                replacement = spawn()
                self.stats["respawns"] += 1
                self.journal.append(
                    "shard-respawn", worker=replacement.wid,
                    pid=replacement.proc.pid, replaces=worker.wid)

        for _ in range(jobs):
            spawn()

        try:
            while self.ready or any(w.inflight for w in workers.values()):
                if self._signal is not None and not self._draining:
                    self._draining = True
                    self.journal.append(
                        "drain-begin", signal=self._signal,
                        inflight=[w.inflight.digest
                                  for w in workers.values() if w.inflight],
                        pending=[u.digest for u in self.ready])
                    self._drain_started = time.monotonic()
                if self._draining:
                    if not any(w.inflight for w in workers.values()):
                        break
                    if (time.monotonic() - self._drain_started
                            > self.policy.drain_timeout):
                        break         # stop waiting; kill below
                else:
                    self._dispatch(workers, spawn)
                self._pump(workers, retire)
        finally:
            for worker in list(workers.values()):
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                try:
                    worker.conn.close()
                except OSError:                     # pragma: no cover
                    pass
                worker.proc.join(timeout=2)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=5)
        if self._signal is not None:
            self._interrupt()

    def _dispatch(self, workers: dict, spawn) -> None:
        if self.ready and not workers:
            spawn()                   # everyone died; keep the sweep alive
        for worker in workers.values():
            if not self.ready:
                break
            if worker.inflight is None:
                unit = self.ready.pop(0)
                worker.inflight = unit
                worker.stage = None
                worker.stage_started = time.monotonic()
                try:
                    worker.conn.send(("unit", unit))
                except (BrokenPipeError, OSError):
                    self.ready.insert(0, unit)
                    worker.inflight = None
                    continue
                self.journal.append(
                    "unit-begin", digest=unit.digest, benchmark=unit.name,
                    round=unit.round, worker=worker.wid)

    def _pump(self, workers: dict, retire) -> None:
        from multiprocessing import connection

        conns = {w.conn: w for w in workers.values()}
        for conn in connection.wait(list(conns), timeout=0.05):
            worker = conns[conn]
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                retire(worker, "pipe closed (worker died)", respawn=True)
                continue
            worker.last_seen = time.monotonic()
            kind = msg[0]
            if kind == "hb":
                continue
            if kind == "stage":
                _, digest, stage, attempt = msg
                worker.stage = stage
                worker.stage_attempt = attempt
                worker.stage_started = time.monotonic()
                if attempt > 0:
                    self.stats["stage_retries"] += 1
                self.journal.append(
                    "stage", digest=digest, stage=stage, attempt=attempt,
                    worker=worker.wid)
            elif kind == "done":
                _, digest, payload = msg
                unit, worker.inflight = worker.inflight, None
                worker.stage = None
                if unit is not None and unit.digest == digest:
                    self._persist(unit, decode_outcome(payload),
                                  payload=payload)
            elif kind == "crash":
                _, digest, worker_tb = msg
                retire(worker, "worker raised", respawn=True,
                       worker_tb=worker_tb)

        now = time.monotonic()
        for worker in list(workers.values()):
            if not worker.proc.is_alive():
                retire(worker, f"process exited "
                       f"(exitcode {worker.proc.exitcode})", respawn=True)
                continue
            if now - worker.last_seen > self.policy.heartbeat_timeout:
                retire(worker, "heartbeat lost", respawn=True)
                continue
            if worker.inflight is not None and worker.stage is not None:
                deadline = self.policy.deadline_for(worker.stage)
                if deadline is not None \
                        and now - worker.stage_started > deadline:
                    retire(worker,
                           f"stage {worker.stage} exceeded "
                           f"{deadline:.3f}s deadline", respawn=True)

    def _fail_unit(self, unit: SweepUnit, worker: _Worker, reason: str,
                   worker_tb: str) -> None:
        """Synthesize a quarantining failure for an unrunnable unit."""
        timed_out = "deadline" in reason
        report = FailureReport(
            benchmark=unit.name, config=self.config,
            error_type="StageTimeout" if timed_out else "WorkerCrashError",
            message=f"worker {worker.wid}: {reason} "
                    f"(stage {worker.stage or '?'}, "
                    f"attempt {self.policy.max_unit_attempts})",
            phase=f"stage:{worker.stage or '?'}",
            schedule_seed=self.kwargs["schedule_seed"],
            retries=self.policy.max_unit_attempts - 1,
            extra={"worker": worker.wid, "stage": worker.stage,
                   "traceback": worker_tb})
        self._persist(unit, {"kind": "failure", "failure": report,
                             "plugins": None})

    # ------------------------------------------------------------------
    # Merge: stitch outcomes back in serial sweep order.
    # ------------------------------------------------------------------
    def _merge(self):
        from repro.faults.resilience import Quarantine, SuiteResult

        out = SuiteResult(
            self.suite_name, self.config,
            quarantine=self.quarantine if self.quarantine is not None
            else Quarantine())
        first_error = None
        for rnd in range(self.repeat):
            for idx, bench in enumerate(self.benches):
                if bench.name in out.quarantine:
                    out.skipped.append(bench.name)
                    self.stats["skipped"] += 1
                    continue
                unit = self.units[(idx, rnd)]
                outcome = self.outcomes.get(unit.digest)
                if outcome is None:                 # pragma: no cover
                    raise DurableSweepError(
                        f"unit {unit.name} round {rnd} has no outcome "
                        f"({unit.digest[:12]}); journal/store inconsistent")
                if outcome["kind"] == "result":
                    out.results.append(outcome["result"])
                    if outcome["race"] is not None:
                        out.race_reports.append(outcome["race"])
                    self._absorb(outcome["plugins"])
                else:
                    report = outcome["failure"]
                    out.failures.append(report)
                    out.quarantine.add(report)
                    self._absorb(outcome.get("plugins"))
                    if first_error is None:
                        first_error = report
        out.durable = dict(self.stats)
        if first_error is not None and not self.continue_on_error:
            raise ReproError(
                f"suite {self.suite_name} aborted on "
                f"{first_error.benchmark}: {first_error.message}")
        return out

    def _absorb(self, payloads) -> None:
        if payloads is None:
            return
        for plugin, payload in zip(self.plugins, payloads):
            plugin.absorb_run(payload)

    # ------------------------------------------------------------------
    def run(self):
        self._open()
        previous = self._install_signals()
        try:
            self._bootstrap()
            try:
                if self.jobs is not None and self.jobs > 1 and self.ready:
                    self._run_parallel()
                else:
                    self._run_serial()
            except SweepInterrupted:
                self.stats["corrupt_store_entries"] += len(self.store.corrupt)
                raise
            self.stats["corrupt_store_entries"] += len(self.store.corrupt)
            out = self._merge()
            self.journal.append(
                "sweep-end", completed=len(out.results),
                stats={k: v for k, v in self.stats.items()
                       if k != "interrupted"})
            if not self.stats["respawns"]:
                # A respawn leaves shard-exit/shard-respawn forensics
                # in the journal; keep them for this session and let
                # the next clean completion compact.
                self._compact_journal()
            return out
        finally:
            self.journal.close()
            self.lock.release()
            if previous:
                for signum, old in previous.items():
                    signal.signal(signum, old)

    def _compact_journal(self) -> None:
        """Bound replay cost: rewrite the journal after clean completion.

        Across resumes an append-only journal replays every historical
        stage/supervision record again and again.  Once a sweep reaches
        ``sweep-end`` the store is authoritative, so only three record
        classes still earn their keep: the latest ``sweep-begin`` (the
        resume fingerprint check), the latest completion record per unit
        digest (``--store-gc``'s referenced set), and the latest
        ``sweep-end``.  Everything else — stages, heartbeat-era shard
        supervision, drains of prior sessions — is dropped, so the
        journal size is bounded by the unit count no matter how many
        times the sweep was killed and resumed.
        """
        replay = self.journal.replay()
        per_digest: dict[str, dict] = {}
        for record in replay.records:
            if record["kind"] in ("unit-done", "unit-cached"):
                previous = per_digest.get(record["digest"])
                # unit-cached just re-confirms an earlier unit-done;
                # keep the execution record when both exist.
                if previous is None or record["kind"] == "unit-done":
                    per_digest[record["digest"]] = record
        keep: list[dict] = []
        begin = replay.last_of_kind("sweep-begin")
        if begin is not None:
            keep.append(begin)
        keep.extend(sorted(per_digest.values(), key=lambda r: r["seq"]))
        end = replay.last_of_kind("sweep-end")
        if end is not None:
            keep.append(end)
        dropped = len(replay.records) - len(keep)
        if dropped > 0:
            self.journal.compact(keep)
            self.journal.append("journal-compact", dropped=dropped,
                                kept=len(keep))


def run_suite_durable(suite="renaissance", *, dir, resume: bool = False,
                      jobs: int | None = None,
                      policy: DurablePolicy | None = None, **kwargs):
    """Crash-safe :func:`~repro.faults.resilience.run_suite`.

    All run parameters match :func:`run_suite`; ``dir`` is the sweep
    directory holding the write-ahead journal (``journal.wal``) and the
    content-addressed result store (``objects/``).  ``resume=True``
    serves units already completed by a previous (possibly killed) sweep
    from the store — the merged result is byte-identical to an
    uninterrupted run.  The returned SuiteResult carries the durability
    counters in ``result.durable``.
    """
    return DurableSweep(suite, dir=dir, resume=resume, jobs=jobs,
                        policy=policy, **kwargs).run()
