"""Benchmark definitions and the warmup/steady-state runner.

Each workload is a :class:`GuestBenchmark`: a guest program plus an
entry point invoked once per iteration.  The :class:`Runner` executes
warmup iterations (letting the JIT tier up), then measured iterations,
reporting per-iteration simulated wall times and counter deltas — the
same shape as the paper's harness ("the default execution time of each
benchmark is tuned to take several seconds"; here, several million
simulated cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ReproError
from repro.lang import compile_program
from repro.runtime import VM


@dataclass(frozen=True)
class GuestBenchmark:
    """One workload: guest source + entry point + expected result."""

    name: str
    suite: str
    source: str
    description: str = ""
    focus: str = ""
    entry: str = "Bench.run"
    args: tuple = ()
    expected: object = None       # per-iteration result check (None = skip)
    warmup: int = 6
    measure: int = 4
    #: False when the checksum legitimately depends on thread interleaving
    #: (the paper: "it is not possible to achieve full determinism in
    #: concurrent benchmarks"); such results vary across configs/seeds.
    deterministic: bool = True

    def compile(self):
        return _compiled(self.source)


@lru_cache(maxsize=256)
def _compiled(source: str):
    return compile_program(source)


@dataclass
class IterationResult:
    wall: int
    work: int
    cpu: float
    result: object


@dataclass
class RunResult:
    benchmark: str
    config: str
    iterations: list[IterationResult] = field(default_factory=list)
    counters: dict = field(default_factory=dict)   # steady-state deltas
    cpu: float = 0.0
    vm: object = None

    @property
    def mean_wall(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(it.wall for it in self.iterations) / len(self.iterations)

    @property
    def walls(self) -> list[int]:
        return [it.wall for it in self.iterations]


class ValidationError(ReproError):
    """A benchmark produced an unexpected result."""


class Runner:
    """Runs one benchmark in one VM configuration."""

    def __init__(self, benchmark: GuestBenchmark, *, jit="graal",
                 cores: int = 8, schedule_seed: int = 0,
                 plugins: tuple = ()) -> None:
        self.benchmark = benchmark
        self.jit = jit
        self.cores = cores
        self.schedule_seed = schedule_seed
        self.plugins = list(plugins)

    def run(self, warmup: int | None = None,
            measure: int | None = None) -> RunResult:
        bench = self.benchmark
        warmup = bench.warmup if warmup is None else warmup
        measure = bench.measure if measure is None else measure
        vm = VM(jit=self.jit, cores=self.cores,
                schedule_seed=self.schedule_seed)
        vm.load(bench.compile())
        if self.jit is None:
            config = "interpreter"
        elif isinstance(self.jit, str):
            config = self.jit
        else:
            config = self.jit.name
        result = RunResult(bench.name, config, vm=vm)
        for plugin in self.plugins:
            plugin.before_run(vm, bench)

        for i in range(warmup):
            self._iteration(vm, bench, None, i, warmup=True)

        steady_before = vm.counters.snapshot()
        timing_before = vm.timing_snapshot()
        for i in range(measure):
            self._iteration(vm, bench, result, i, warmup=False)
        result.counters = vm.counters.diff(steady_before)
        result.cpu = vm.interval_stats(timing_before)["cpu"]

        for plugin in self.plugins:
            plugin.after_run(vm, bench, result)
        return result

    def _iteration(self, vm: VM, bench: GuestBenchmark, result, index: int,
                   *, warmup: bool) -> None:
        for plugin in self.plugins:
            plugin.before_iteration(vm, bench, index, warmup)
        before = vm.timing_snapshot()
        value = vm.invoke(bench.entry, list(bench.args),
                          name=f"{bench.name}-it{index}")
        stats = vm.interval_stats(before)
        if bench.expected is not None and value != bench.expected:
            raise ValidationError(
                f"{bench.name}: expected {bench.expected!r}, got {value!r}")
        if result is not None:
            result.iterations.append(IterationResult(
                stats["wall"], stats["work"], stats["cpu"], value))
        for plugin in self.plugins:
            plugin.after_iteration(vm, bench, index, warmup, stats)
