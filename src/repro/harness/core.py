"""Benchmark definitions and the warmup/steady-state runner.

Each workload is a :class:`GuestBenchmark`: a guest program plus an
entry point invoked once per iteration.  The :class:`Runner` executes
warmup iterations (letting the JIT tier up), then measured iterations,
reporting per-iteration simulated wall times and counter deltas — the
same shape as the paper's harness ("the default execution time of each
benchmark is tuned to take several seconds"; here, several million
simulated cycles).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.lang import compile_program
from repro.runtime import VM


@dataclass(frozen=True)
class GuestBenchmark:
    """One workload: guest source + entry point + expected result."""

    name: str
    suite: str
    source: str
    description: str = ""
    focus: str = ""
    entry: str = "Bench.run"
    args: tuple = ()
    expected: object = None       # per-iteration result check (None = skip)
    warmup: int = 6
    measure: int = 4
    #: False when the checksum legitimately depends on thread interleaving
    #: (the paper: "it is not possible to achieve full determinism in
    #: concurrent benchmarks"); such results vary across configs/seeds.
    deterministic: bool = True

    def compile(self):
        return _compiled(self.source)


# Compiled-program cache.  A plain ``lru_cache(maxsize=256)`` thrashes
# under parametrized test sweeps: hundreds of small one-off sources
# evict the 70 (expensive) suite benchmarks mid-session and every
# subsequent Runner recompiles them.  Instead: a true-LRU OrderedDict
# sized comfortably above the suite corpus, with an explicit clear knob.
_COMPILE_CACHE: OrderedDict[str, object] = OrderedDict()
_COMPILE_CACHE_MAX = 1024
_COMPILE_CACHE_STATS = {"hits": 0, "misses": 0}


def _compiled(source: str):
    program = _COMPILE_CACHE.get(source)
    if program is not None:
        _COMPILE_CACHE_STATS["hits"] += 1
        _COMPILE_CACHE.move_to_end(source)
        return program
    _COMPILE_CACHE_STATS["misses"] += 1
    program = compile_program(source)
    _COMPILE_CACHE[source] = program
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.popitem(last=False)
    return program


def compile_cache_info() -> dict:
    """Size and hit-rate of the shared compiled-program cache.

    Only source→Program compiles are counted here; the per-VM
    threaded-code translation cache (whose quickened bodies can be
    invalidated and re-translated) reports its own hit-rate via
    ``vm.interpreter.cache_info()``.
    """
    hits = _COMPILE_CACHE_STATS["hits"]
    misses = _COMPILE_CACHE_STATS["misses"]
    total = hits + misses
    return {
        "size": len(_COMPILE_CACHE),
        "maxsize": _COMPILE_CACHE_MAX,
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
    }


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()
    _COMPILE_CACHE_STATS["hits"] = 0
    _COMPILE_CACHE_STATS["misses"] = 0


@dataclass
class IterationResult:
    wall: int                 # simulated cycles
    work: int
    cpu: float
    result: object
    host_seconds: float = 0.0  # host wall-clock of this iteration


@dataclass
class RunResult:
    benchmark: str
    config: str
    iterations: list[IterationResult] = field(default_factory=list)
    counters: dict = field(default_factory=dict)   # steady-state deltas
    cpu: float = 0.0
    vm: object = None
    trace: object = None      # summary dict set by repro.trace.TracePlugin
    tier1: object = None      # host tier-1 snapshot when engine="tier1"
    tier2: object = None      # host tier-2 snapshot when engine="tier2"

    @property
    def mean_wall(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(it.wall for it in self.iterations) / len(self.iterations)

    @property
    def walls(self) -> list[int]:
        return [it.wall for it in self.iterations]

    @property
    def host_seconds(self) -> float:
        """Total host wall-clock across the measured iterations."""
        return sum(it.host_seconds for it in self.iterations)

    def fingerprint(self) -> str:
        """SHA-256 over every deterministic field of this result.

        Host timing (``host_seconds``) and the live VM are excluded;
        everything the simulation determines — per-iteration simulated
        walls/work/cpu and values, steady-state counters, CPU
        utilization, and the trace digest if a recorder ran — is
        canonically serialized.  Two runs of the same (benchmark,
        config, seed) unit fingerprint identically, whether they ran
        serially, in a shard, or were resumed from the durable store;
        ``tests/test_durable.py`` leans on this for its byte-identity
        assertions.  The host execution engine and its ``tier1``/
        ``tier2`` snapshots are deliberately excluded: a unit must
        fingerprint the same under every engine, which is exactly the
        tier ladder's byte-identity contract (DESIGN.md §11, §13).
        """
        import hashlib
        import json

        body = json.dumps({
            "benchmark": self.benchmark,
            "config": self.config,
            "counters": {str(k): v for k, v in sorted(self.counters.items())},
            "cpu": self.cpu,
            "iterations": [
                (it.wall, it.work, it.cpu, repr(it.result))
                for it in self.iterations],
            "trace": self.trace,
        }, sort_keys=True, separators=(",", ":"), default=repr)
        return hashlib.sha256(body.encode()).hexdigest()


class ValidationError(ReproError):
    """A benchmark produced an unexpected result.

    Carries the VM config and iteration index that produced the bad
    value, so a parametrized sweep failure is attributable without
    rerunning (``benchmark``/``config``/``iteration``/``warmup``).
    """

    def __init__(self, message: str, *, benchmark: str = "?",
                 config: str = "?", iteration: int | None = None,
                 warmup: bool = False) -> None:
        super().__init__(message)
        self.benchmark = benchmark
        self.config = config
        self.iteration = iteration
        self.warmup = warmup


def config_name(jit) -> str:
    """Display name of a ``jit=`` spec ("interpreter", "graal", ...)."""
    if jit is None:
        return "interpreter"
    if isinstance(jit, str):
        return jit
    return jit.name


class Runner:
    """Runs one benchmark in one VM configuration.

    ``faults`` is an optional :class:`repro.faults.FaultPlan` (or
    prepared :class:`~repro.faults.FaultInjector`) threaded into the VM.
    ``iteration_budget`` bounds each iteration to that many simulated
    cycles via the scheduler watchdog — a runaway guest loop raises
    :class:`~repro.errors.WatchdogTimeout` instead of hanging the host.
    ``sanitize`` turns on checked mode: ``True``, a
    :class:`~repro.sanitize.hb.SanitizerConfig` or a prepared
    :class:`~repro.sanitize.plugin.SanitizerPlugin`.  Checked runs are
    interpreter-only (the JIT's machine code has no access hooks), and
    the race report of the latest run hangs off
    ``runner.sanitize_plugin.report``.

    ``engine`` selects the host execution engine — ``"threaded"`` (the
    default), ``"reference"`` (the oracle), ``"tier1"`` (superblock
    closures with deopt fallback) or ``"tier2"`` (tier-1 plus host
    compilation of guest-JIT machine code, with OSR and a deopt chain).
    The choice is pure host-side speed: counters, schedules, results
    and fingerprints are byte-identical across engines.

    ``verify_ir`` turns on the compiler verification layer
    (:mod:`repro.sanitize.irverify`): every guest-JIT compile re-checks
    the IR after each pipeline phase, and every tier-1 promotion
    validates its superblocks (:mod:`repro.sanitize.blockverify`).  A
    violation raises instead of silently falling back — results are
    unchanged when everything is sound.
    """

    def __init__(self, benchmark: GuestBenchmark, *, jit="graal",
                 cores: int = 8, schedule_seed: int = 0,
                 plugins: tuple = (), faults=None,
                 iteration_budget: int | None = None,
                 sanitize=None, engine: str = "threaded",
                 verify_ir: bool = False) -> None:
        self.benchmark = benchmark
        self.jit = jit
        self.engine = engine
        self.verify_ir = bool(verify_ir)
        self.cores = cores
        self.schedule_seed = schedule_seed
        self.plugins = list(plugins)
        self.faults = faults
        self.iteration_budget = iteration_budget
        self.sanitize_plugin = None
        if sanitize is not None and sanitize is not False:
            from repro.sanitize.plugin import SanitizerPlugin

            if isinstance(sanitize, SanitizerPlugin):
                self.sanitize_plugin = sanitize
            else:
                config = None if sanitize is True else sanitize
                self.sanitize_plugin = SanitizerPlugin(config)
            self.plugins.append(self.sanitize_plugin)
            self.jit = None   # checked runs are interpreter-only
        self.last_vm: VM | None = None     # VM of the most recent run()
        self.last_injector = None          # its FaultInjector, if any

    @property
    def config(self) -> str:
        return config_name(self.jit)

    def run(self, warmup: int | None = None,
            measure: int | None = None) -> RunResult:
        bench = self.benchmark
        warmup = bench.warmup if warmup is None else warmup
        measure = bench.measure if measure is None else measure
        vm = VM(jit=self.jit, cores=self.cores,
                schedule_seed=self.schedule_seed, faults=self.faults,
                engine=self.engine, verify_ir=self.verify_ir)
        self.last_vm = vm
        self.last_injector = vm.faults
        vm.load(bench.compile())
        config = self.config
        result = RunResult(bench.name, config, vm=vm)
        for plugin in self.plugins:
            plugin.before_run(vm, bench)

        for i in range(warmup):
            self._iteration(vm, bench, None, i, warmup=True)

        steady_before = vm.counters.snapshot()
        timing_before = vm.timing_snapshot()
        for i in range(measure):
            self._iteration(vm, bench, result, i, warmup=False)
        result.counters = vm.counters.diff(steady_before)
        result.cpu = vm.interval_stats(timing_before)["cpu"]
        snapshot = getattr(vm.interpreter, "tier1_snapshot", None)
        if snapshot is not None:
            result.tier1 = snapshot()
        snapshot = getattr(vm.interpreter, "tier2_snapshot", None)
        if snapshot is not None:
            result.tier2 = snapshot()

        for plugin in self.plugins:
            plugin.after_run(vm, bench, result)
        return result

    def _iteration(self, vm: VM, bench: GuestBenchmark, result, index: int,
                   *, warmup: bool) -> None:
        for plugin in self.plugins:
            plugin.before_iteration(vm, bench, index, warmup)
        before = vm.timing_snapshot()
        host_started = time.perf_counter()
        if self.iteration_budget is not None:
            vm.scheduler.watchdog_cycles = (
                vm.scheduler.clock + self.iteration_budget)
        try:
            value = vm.invoke(bench.entry, list(bench.args),
                              name=f"{bench.name}-it{index}")
        except ReproError as exc:
            # Stamp phase info for the resilience layer's FailureReport.
            if getattr(exc, "iteration", None) is None:
                exc.iteration = index
                exc.warmup = warmup
            raise
        stats = vm.interval_stats(before)
        if bench.expected is not None and value != bench.expected:
            phase = "warmup" if warmup else "measure"
            raise ValidationError(
                f"{bench.name}[{self.config}] {phase} iteration {index}: "
                f"expected {bench.expected!r}, got {value!r}",
                benchmark=bench.name, config=self.config,
                iteration=index, warmup=warmup)
        if result is not None:
            result.iterations.append(IterationResult(
                stats["wall"], stats["work"], stats["cpu"], value,
                host_seconds=time.perf_counter() - host_started))
        for plugin in self.plugins:
            plugin.after_iteration(vm, bench, index, warmup, stats)
