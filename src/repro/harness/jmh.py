"""JMH-style frontend: forks × iterations with summary statistics.

The paper's harness "allows running the benchmarks with JMH as a
frontend to avoid common measurement pitfalls".  A fork here is a fresh
VM with a distinct schedule seed — the deterministic analogue of a fresh
JVM process — so fork-to-fork variance reflects scheduling
non-determinism, feeding the significance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.core import GuestBenchmark, Runner
from repro.harness.stats import confidence_interval, mean, stdev


@dataclass
class JmhResult:
    benchmark: str
    config: str
    forks: int
    walls: list[float] = field(default_factory=list)   # per-iteration walls
    fork_means: list[float] = field(default_factory=list)

    @property
    def score(self) -> float:
        return mean(self.fork_means)

    @property
    def error(self) -> float:
        return stdev(self.fork_means)

    def ci(self, level: float = 0.99) -> tuple[float, float]:
        return confidence_interval(self.fork_means, level)

    def format(self) -> str:
        lo, hi = self.ci()
        return (f"{self.benchmark:24s} {self.config:14s} "
                f"{self.score:12.0f} ± {self.error:10.0f} cycles/op "
                f"[{lo:.0f}, {hi:.0f}]")


def run_jmh(benchmark: GuestBenchmark, *, jit="graal", forks: int = 3,
            warmup: int | None = None, measure: int | None = None,
            cores: int = 8, plugins: tuple = ()) -> JmhResult:
    """Run ``benchmark`` in ``forks`` fresh VMs and aggregate."""
    if jit is None:
        config = "interpreter"
    elif isinstance(jit, str):
        config = jit
    else:
        config = jit.name
    out = JmhResult(benchmark.name, config, forks)
    for fork in range(forks):
        runner = Runner(benchmark, jit=jit, cores=cores,
                        schedule_seed=fork * 7919, plugins=plugins)
        result = runner.run(warmup=warmup, measure=measure)
        out.walls.extend(result.walls)
        out.fork_means.append(result.mean_wall)
    return out
