"""Command-line suite sweeps: ``python -m repro.harness``.

Runs one registered suite through the resilient harness and prints a
per-benchmark summary plus the suite roll-up.  ``--jobs N`` shards the
sweep across N worker processes (byte-identical results, see
:mod:`repro.harness.parallel`); ``--durable DIR`` journals every stage
into DIR and caches completed units in a content-addressed store, so a
killed sweep continues with ``--resume DIR`` instead of starting over
(see :mod:`repro.harness.durable`).

Options::

    python -m repro.harness                          # renaissance, serial
    python -m repro.harness dacapo --jobs 4          # sharded sweep
    python -m repro.harness renaissance:scrabble,philosophers
    python -m repro.harness --jit none --warmup 1 --measure 1
    python -m repro.harness --sanitize               # checked mode
    python -m repro.harness --jobs 4 --durable .sweep     # crash-safe
    python -m repro.harness --jobs 4 --resume .sweep      # ...continue it
    python -m repro.harness --report out.json        # machine-readable

Exit codes are distinct per failure class so CI can triage without
parsing output: 0 all good; 1 at least one benchmark failed; 2 nothing
failed but quarantined benchmarks were skipped; 3 clean results but the
durable supervisor had to respawn a shard; 4 the sweep was interrupted
(SIGINT/SIGTERM) after draining — resume it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: Distinct exit codes (documented above; asserted by tests).
EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_QUARANTINED = 2
EXIT_RESPAWNED = 3
EXIT_INTERRUPTED = 4


def exit_code(suite) -> int:
    """Most severe applicable code: failures > quarantined > respawns."""
    if suite.failures:
        return EXIT_FAILURES
    if suite.skipped:
        return EXIT_QUARANTINED
    if suite.respawns:
        return EXIT_RESPAWNED
    return EXIT_OK


def _resolve_spec(spec: str):
    """``suite`` or ``suite:bench1,bench2`` -> run_suite's workload arg."""
    if ":" not in spec:
        return spec, spec
    from repro.suites.registry import get_benchmark

    suite_name, names = spec.split(":", 1)
    benches = [get_benchmark(name.strip(), suite=suite_name)
               for name in names.split(",") if name.strip()]
    return benches, spec


def write_report(suite, path: str, code: int) -> None:
    """Stable JSON report: suite roll-up + FailureReport.to_json dicts."""
    doc = suite.to_report_dict()
    doc["exit_code"] = code
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, indent=2)
        fh.write("\n")


def referenced_digests(sweep_dir: str) -> set:
    """Digests any journal in ``sweep_dir`` still refers to.

    Both journal flavors count: a durable sweep's ``journal.wal``
    (``unit-done``/``unit-cached`` records) and a service's
    ``serve.wal`` (the per-job digest lists journaled at submit).
    """
    import os

    from repro.harness.journal import Journal

    referenced: set = set()
    for name in ("journal.wal", "serve.wal"):
        path = os.path.join(sweep_dir, name)
        if not os.path.exists(path):
            continue
        for record in Journal(path).replay().records:
            if "digest" in record:
                referenced.add(record["digest"])
            for digest in record.get("digests", ()):
                referenced.add(digest)
    return referenced


def store_maintenance(ls_dir: str | None, gc_dir: str | None) -> int:
    """``--store-ls`` / ``--store-gc``: inspect or prune a result store."""
    from repro.harness.store import ResultStore

    if ls_dir:
        store = ResultStore(ls_dir)
        entries = store.ls()
        referenced = referenced_digests(ls_dir)
        bad = 0
        for entry in entries:
            mark = "ok" if entry["ok"] else f"BAD ({entry['reason']})"
            ref = "" if entry["digest"] in referenced else "  unreferenced"
            print(f"{entry['digest']}  {entry['bytes']:>8d}B  {mark}{ref}")
            if not entry["ok"]:
                bad += 1
        print(f"{len(entries)} objects, {bad} bad, "
              f"{len(referenced)} journal-referenced")
        return EXIT_OK if bad == 0 else EXIT_FAILURES
    store = ResultStore(gc_dir)
    stats = store.gc(referenced=referenced_digests(gc_dir))
    print(f"store-gc: kept {stats['kept']}, pruned "
          f"{stats['pruned_corrupt']} corrupt + "
          f"{stats['pruned_unreferenced']} unreferenced + "
          f"{stats['pruned_tmp']} temp "
          f"({stats['bytes_freed']} bytes freed)")
    return EXIT_OK


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run a benchmark suite through the resilient harness")
    parser.add_argument(
        "spec", nargs="?", default=None,
        help="suite name, optionally with a benchmark subset: "
             "'renaissance' or 'renaissance:scrabble,philosophers' "
             "(default: renaissance)")
    parser.add_argument("--suite", default=None,
                        help="registered suite name (same as the "
                             "positional spec; kept for compatibility)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset of the suite")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, the default)")
    parser.add_argument("--jit", default="graal",
                        help='"graal", "c2" or "none" (interpreter only)')
    parser.add_argument("--engine", default="threaded",
                        choices=("reference", "threaded", "tier1", "tier2"),
                        help="host execution engine (byte-identical "
                             "results; tier1 compiles hot methods to "
                             "superblock closures, tier2 additionally "
                             "host-compiles guest-JIT machine code with "
                             "OSR and a deopt chain)")
    parser.add_argument("--cores", type=int, default=8,
                        help="simulated cores per VM")
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule seed (same seed for every shard)")
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--measure", type=int, default=None)
    parser.add_argument("--repeat", type=int, default=1,
                        help="whole-suite sweep repetitions")
    parser.add_argument("--sanitize", action="store_true",
                        help="checked mode: happens-before race sanitizer")
    parser.add_argument("--metrics", action="store_true",
                        help="attach the Table-2 MetricsPlugin")
    parser.add_argument("--trace", action="store_true",
                        help="attach the flight-recorder TracePlugin")
    parser.add_argument("--durable", metavar="DIR", default=None,
                        help="journal + result store directory: the sweep "
                             "becomes crash-safe and resumable")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="resume the durable sweep in DIR, serving "
                             "completed units from its store")
    parser.add_argument("--report", metavar="OUT.json", default=None,
                        help="write a machine-readable failure report")
    parser.add_argument("--store-ls", metavar="DIR", default=None,
                        help="list the content-addressed store in DIR "
                             "(digest, size, checksum verdict) and exit")
    parser.add_argument("--store-gc", metavar="DIR", default=None,
                        help="prune corrupt, orphaned and journal-"
                             "unreferenced store objects in DIR and exit")
    args = parser.parse_args(argv)

    if args.store_ls or args.store_gc:
        return store_maintenance(args.store_ls, args.store_gc)

    from repro.errors import DurableSweepError, SweepInterrupted
    from repro.faults.resilience import run_suite

    spec = args.spec or args.suite or "renaissance"
    if args.benchmarks:
        spec = f"{spec.split(':', 1)[0]}:{args.benchmarks}"
    try:
        workload, spec_label = _resolve_spec(spec)
    except Exception as exc:
        print(f"error: bad spec {spec!r}: {exc}", file=sys.stderr)
        return EXIT_FAILURES

    plugins = []
    if args.metrics:
        from repro.metrics.profiler import MetricsPlugin
        plugins.append(MetricsPlugin())
    if args.trace:
        from repro.trace import TracePlugin
        plugins.append(TracePlugin())

    durable_dir = args.resume or args.durable
    jit = None if args.jit in ("none", "None") else args.jit
    started = time.perf_counter()
    try:
        suite = run_suite(
            workload, jobs=args.jobs, jit=jit, cores=args.cores,
            schedule_seed=args.seed, warmup=args.warmup,
            measure=args.measure, repeat=args.repeat,
            plugins=tuple(plugins),
            sanitize=True if args.sanitize else None,
            durable_dir=durable_dir, resume=args.resume is not None,
            engine=args.engine)
    except SweepInterrupted as exc:
        print(f"INTERRUPTED: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except DurableSweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURES
    host_seconds = time.perf_counter() - started

    for result in suite.results:
        print(f"  {result.benchmark:24s} mean_wall={result.mean_wall:>12.0f} "
              f"cycles  host={result.host_seconds:.3f}s")
    for report in suite.race_reports:
        if not report.clean:
            print(f"  race: {report.format()}")
    print(suite.format())
    if suite.durable:
        d = suite.durable
        print(f"durable: {d['executed']} executed, "
              f"{d['served_from_store']} served from store, "
              f"{d['respawns']} respawns "
              f"({spec_label} -> {durable_dir})")
    tier1 = suite.tier1_summary()
    if tier1:
        deopts = sum(tier1["deopts"].values())
        print(f"tier1: {tier1['promotions']} promotions, "
              f"{tier1['compiled_blocks']} superblocks, {deopts} deopts, "
              f"{tier1['compile_cycles']} compile cycles")
    tier2 = suite.tier2_summary()
    if tier2:
        deopts = sum(tier2["deopts"].values())
        print(f"tier2: {tier2['promotions']} promotions, "
              f"{tier2['compiled_blocks']} superblocks, "
              f"{tier2['osr_entries']} OSR entries, {deopts} deopts, "
              f"{tier2['compile_cycles']} compile cycles "
              f"({tier2['compile_seconds']:.3f}s host compile)")
    print(f"host wall time: {host_seconds:.2f}s (jobs={args.jobs})")

    code = exit_code(suite)
    if code != EXIT_OK:
        print(f"FAIL[{code}]: {suite.summary_line()}", file=sys.stderr)
    if args.report:
        write_report(suite, args.report, code)
    return code


if __name__ == "__main__":
    sys.exit(main())
