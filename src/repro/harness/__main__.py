"""Command-line suite sweeps: ``python -m repro.harness``.

Runs one registered suite through the resilient harness and prints a
per-benchmark summary plus the suite roll-up.  ``--jobs N`` shards the
sweep across N worker processes (byte-identical results, see
:mod:`repro.harness.parallel`).

Options::

    python -m repro.harness                          # renaissance, serial
    python -m repro.harness --suite dacapo --jobs 4  # sharded sweep
    python -m repro.harness --jit none --warmup 1 --measure 1
    python -m repro.harness --sanitize               # checked mode
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run a benchmark suite through the resilient harness")
    parser.add_argument("--suite", default="renaissance",
                        help="registered suite name (default: renaissance)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, the default)")
    parser.add_argument("--jit", default="graal",
                        help='"graal", "c2" or "none" (interpreter only)')
    parser.add_argument("--cores", type=int, default=8,
                        help="simulated cores per VM")
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule seed (same seed for every shard)")
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--measure", type=int, default=None)
    parser.add_argument("--repeat", type=int, default=1,
                        help="whole-suite sweep repetitions")
    parser.add_argument("--sanitize", action="store_true",
                        help="checked mode: happens-before race sanitizer")
    args = parser.parse_args(argv)

    from repro.faults.resilience import run_suite

    jit = None if args.jit in ("none", "None") else args.jit
    started = time.perf_counter()
    suite = run_suite(
        args.suite, jobs=args.jobs, jit=jit, cores=args.cores,
        schedule_seed=args.seed, warmup=args.warmup, measure=args.measure,
        repeat=args.repeat, sanitize=True if args.sanitize else None)
    host_seconds = time.perf_counter() - started

    for result in suite.results:
        print(f"  {result.benchmark:24s} mean_wall={result.mean_wall:>12.0f} "
              f"cycles  host={result.host_seconds:.3f}s")
    for report in suite.race_reports:
        if not report.clean:
            print(f"  race: {report.format()}")
    print(suite.format())
    print(f"host wall time: {host_seconds:.2f}s (jobs={args.jobs})")
    return 1 if suite.failures else 0


if __name__ == "__main__":
    sys.exit(main())
