"""The benchmark harness (paper Section 2.2).

- :mod:`repro.harness.core` — the :class:`GuestBenchmark` definition and
  the warmup/steady-state :class:`Runner`,
- :mod:`repro.harness.plugins` — the measurement-plugin interface the
  paper's metric collection uses,
- :mod:`repro.harness.jmh` — a JMH-style frontend (forks × iterations
  with summary statistics),
- :mod:`repro.harness.stats` — Welch's t-test, winsorization, geometric
  means and confidence intervals,
- :mod:`repro.harness.durable` — crash-safe sweeps: journaled stage
  lifecycle, content-addressed result store, checkpoint/resume, and
  worker supervision (with :mod:`repro.harness.journal` and
  :mod:`repro.harness.store` underneath).
"""

from repro.harness.core import (
    GuestBenchmark,
    IterationResult,
    Runner,
    RunResult,
    ValidationError,
    config_name,
)
from repro.harness.plugins import (
    FaultLogPlugin,
    HarnessPlugin,
    MergeablePlugin,
)
from repro.harness.jmh import JmhResult, run_jmh
from repro.harness.parallel import run_suite_parallel
from repro.harness.durable import DurablePolicy, run_suite_durable

__all__ = [
    "GuestBenchmark", "IterationResult", "Runner", "RunResult",
    "ValidationError", "config_name",
    "HarnessPlugin", "FaultLogPlugin", "MergeablePlugin",
    "JmhResult", "run_jmh",
    "run_suite_parallel", "run_suite_durable", "DurablePolicy",
]
