"""The benchmark harness (paper Section 2.2).

- :mod:`repro.harness.core` — the :class:`GuestBenchmark` definition and
  the warmup/steady-state :class:`Runner`,
- :mod:`repro.harness.plugins` — the measurement-plugin interface the
  paper's metric collection uses,
- :mod:`repro.harness.jmh` — a JMH-style frontend (forks × iterations
  with summary statistics),
- :mod:`repro.harness.stats` — Welch's t-test, winsorization, geometric
  means and confidence intervals.
"""

from repro.harness.core import (
    GuestBenchmark,
    IterationResult,
    Runner,
    RunResult,
    ValidationError,
    config_name,
)
from repro.harness.plugins import FaultLogPlugin, HarnessPlugin
from repro.harness.jmh import JmhResult, run_jmh
from repro.harness.parallel import run_suite_parallel

__all__ = [
    "GuestBenchmark", "IterationResult", "Runner", "RunResult",
    "ValidationError", "config_name",
    "HarnessPlugin", "FaultLogPlugin", "JmhResult", "run_jmh",
    "run_suite_parallel",
]
