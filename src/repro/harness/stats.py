"""Statistics used by the evaluation (paper Section 6 methodology).

Welch's t-test decides significance of optimization impacts at
α = 0.01; winsorized filtering removes outliers from Figure 5's inputs;
geometric means summarize the CK and code-size tables.
"""

from __future__ import annotations

import math

from scipy import stats as _scipy_stats


def winsorize(values: list[float], fraction: float = 0.1) -> list[float]:
    """Clamp the lowest/highest ``fraction`` of values to the remaining
    extremes (the paper's outlier filtering for Figure 5)."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    k = int(n * fraction)
    lo = ordered[k]
    hi = ordered[n - 1 - k]
    return [min(max(v, lo), hi) for v in values]


def welch_t_test(a: list[float], b: list[float]) -> float:
    """p-value of Welch's two-sided t-test; 1.0 when underpowered."""
    if len(a) < 2 or len(b) < 2:
        return 1.0
    if _all_equal(a) and _all_equal(b):
        return 0.0 if a[0] != b[0] else 1.0
    result = _scipy_stats.ttest_ind(a, b, equal_var=False)
    p = float(result.pvalue)
    return 1.0 if math.isnan(p) else p


def _all_equal(values: list[float]) -> bool:
    return all(v == values[0] for v in values)


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def geomean(values: list[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def stdev(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def confidence_interval(values: list[float], level: float = 0.99
                        ) -> tuple[float, float]:
    """Two-sided t-distribution CI of the mean (Figure 6's 99% bars)."""
    if len(values) < 2:
        m = mean(values)
        return (m, m)
    m = mean(values)
    se = stdev(values) / math.sqrt(len(values))
    if se == 0.0:
        return (m, m)
    t = _scipy_stats.t.ppf(0.5 + level / 2, len(values) - 1)
    return (m - t * se, m + t * se)


def relative_impact(disabled_walls: list[float],
                    baseline_walls: list[float]) -> float:
    """The paper's impact measure: relative change in execution time when
    an optimization is disabled (positive = the optimization helps)."""
    base = mean(baseline_walls)
    if base == 0:
        return 0.0
    return (mean(disabled_walls) - base) / base
