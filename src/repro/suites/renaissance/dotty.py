"""dotty: compiling a Scala codebase with the Dotty compiler (Table 1).

Focus: data structures, synchronization.  The reproduction runs a small
compiler front-end over generated sources: tokenizing, symbol-table
insertion (shared, synchronized) and a constant-folding pass over an
AST of expression nodes — the allocation/dispatch-heavy profile of a
compiler workload.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Sym {
    var name;
    var arity;

    def init(name, arity) {
        this.name = name;
        this.arity = arity;
    }
}

class ExprNode { def init() { } }
class NumNode extends ExprNode {
    var value;
    def init(value) { this.value = value; }
}
class AddNode extends ExprNode {
    var lhs;
    var rhs;
    def init(lhs, rhs) { this.lhs = lhs; this.rhs = rhs; }
}
class MulNode extends ExprNode {
    var lhs;
    var rhs;
    def init(lhs, rhs) { this.lhs = lhs; this.rhs = rhs; }
}

class MiniCompiler {
    var symbols;      // shared symbol table, synchronized access
    var defined;      // AtomicLong

    def init() {
        this.symbols = new HashMap();
        this.defined = new AtomicLong(0);
    }

    synchronized def define(name, arity) {
        if (!this.symbols.contains(name)) {
            this.symbols.put(name, new Sym(name, arity));
            this.defined.incrementAndGet();
            return 1;
        }
        return 0;
    }

    // Build an unbalanced expression tree from a seed.
    def parse(seed, depth) {
        if (depth == 0) {
            return new NumNode(seed % 17);
        }
        var l = this.parse(seed * 3 + 1, depth - 1);
        var r = this.parse(seed * 5 + 2, depth - 1);
        if (seed % 2 == 0) {
            return new AddNode(l, r);
        }
        return new MulNode(l, r);
    }

    // Constant folding: virtual-dispatch-heavy tree walk.
    def fold(node) {
        if (node instanceof NumNode) {
            return cast(NumNode, node).value;
        }
        if (node instanceof AddNode) {
            var a = cast(AddNode, node);
            return (this.fold(a.lhs) + this.fold(a.rhs)) % 1000003;
        }
        var m = cast(MulNode, node);
        return (this.fold(m.lhs) * this.fold(m.rhs)) % 1000003;
    }

    def compileUnit(unit, depth) {
        this.define("unit" + unit, unit % 5);
        var tree = this.parse(unit * 7 + 3, depth);
        return this.fold(tree);
    }
}

class Bench {
    static def run(n) {
        var compiler = new MiniCompiler();
        var acc = 0;
        var unit = 0;
        while (unit < n) {
            acc = (acc + compiler.compileUnit(unit, 6)) % 1000000007;
            unit = unit + 1;
        }
        return acc * 1000 + compiler.defined.get() % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="dotty",
    suite="renaissance",
    source=SOURCE,
    description="Compiler front-end: parsing into AST nodes, shared "
                "symbol table, constant-folding walks",
    focus="data structures, synchronization",
    args=(60,),
    warmup=5,
    measure=4,
)
