"""future-genetic: genetic-algorithm function optimization (Table 1).

Focus: task-parallel, contention.  The population evaluates on futures;
all tasks share one ``Random`` whose ``nextDouble`` performs two
consecutive CAS retry loops — Section 5.3's Atomic-Operation Coalescing
(AC) target (paper: ≈24% impact, plus ≈25% from MHS on the future
combinators).
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Genetic {
    var rng;          // shared: the contended java.util.Random analogue
    var genomes;      // double array, g per individual
    var pop;
    var genes;

    def init(pop, genes) {
        this.pop = pop;
        this.genes = genes;
        this.rng = new Random(2023);
        this.genomes = new double[pop * genes];
        var i = 0;
        while (i < pop * genes) {
            this.genomes[i] = this.rng.nextDouble() * 4.0 - 2.0;
            i = i + 1;
        }
    }

    def fitness(index) {
        // Rastrigin-like bowl; pure double math.
        var acc = 0.0;
        var g = 0;
        while (g < this.genes) {
            var x = this.genomes[index * this.genes + g];
            acc = acc + x * x - Math.cos(x * 6.28) + 1.0;
            g = g + 1;
        }
        return acc;
    }

    def mutate(index) {
        // Shared-Random contention: every mutation draws doubles.
        var g = 0;
        while (g < this.genes) {
            var p = this.rng.nextDouble();
            if (p < 0.2) {
                var slot = index * this.genes + g;
                this.genomes[slot] =
                    this.genomes[slot] + this.rng.nextDouble() - 0.5;
            }
            g = g + 1;
        }
        return index;
    }

    def evolve(pool) {
        var self = this;
        var futures = new ArrayList();
        var i = 0;
        while (i < this.pop) {
            var idx = i;
            futures.add(pool.submit(fun () {
                self.mutate(idx);
                return self.fitness(idx);
            }));
            i = i + 1;
        }
        var best = 1.0e18;
        i = 0;
        while (i < futures.size()) {
            var f = cast(Promise, futures.get(i));
            var fit = f.get();
            if (fit < best) { best = fit; }
            i = i + 1;
        }
        return best;
    }
}

class Bench {
    static def run(n) {
        var ga = new Genetic(n, 8);
        var pool = new ThreadPool(4);
        var best = 0.0;
        var gen = 0;
        while (gen < 4) {
            best = ga.evolve(pool);
            gen = gen + 1;
        }
        pool.shutdown();
        return d2i(best * 1000.0);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="future-genetic",
    suite="renaissance",
    source=SOURCE,
    description="Genetic algorithm on futures with a shared CAS-based "
                "pseudo-random generator",
    focus="task-parallel, contention",
    args=(48,),
    warmup=6,
    measure=4,
    deterministic=False,
)
