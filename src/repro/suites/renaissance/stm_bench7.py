"""stm-bench7: the STMBench7 workload on ScalaSTM (Table 1).

Focus: STM, atomics.  A CAD-like assembly structure (modules containing
atomic parts with STM-managed attributes) is traversed and mutated by
concurrent transactions of three kinds — read-heavy traversals, short
part updates, and structural hot-spot updates — following STMBench7's
operation mix.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Part {
    var value;        // STMRef
    var weight;       // STMRef

    def init(seed) {
        this.value = new STMRef(seed % 100);
        this.weight = new STMRef(seed % 7 + 1);
    }
}

class Module {
    var parts;        // ref array of Part

    def init(count, seed) {
        this.parts = new ref[count];
        var i = 0;
        while (i < count) {
            this.parts[i] = new Part(seed * 31 + i);
            i = i + 1;
        }
    }
}

class Bench7 {
    var modules;      // ref array of Module
    var moduleCount;
    var partsPerModule;

    def init(moduleCount, partsPerModule) {
        this.moduleCount = moduleCount;
        this.partsPerModule = partsPerModule;
        this.modules = new ref[moduleCount];
        var i = 0;
        while (i < moduleCount) {
            this.modules[i] = new Module(partsPerModule, i);
            i = i + 1;
        }
    }

    // T1: read-only traversal of one module.
    def traverse(m) {
        var module = cast(Module, this.modules[m]);
        return STM.atomic(fun (txn) {
            var acc = 0;
            var i = 0;
            while (i < len(module.parts)) {
                var part = cast(Part, module.parts[i]);
                acc = acc + txn.read(part.value) * txn.read(part.weight);
                i = i + 1;
            }
            return acc;
        });
    }

    // T2: short update of a single part.
    def updatePart(m, p) {
        var module = cast(Module, this.modules[m]);
        var part = cast(Part, module.parts[p]);
        return STM.atomic(fun (txn) {
            var v = txn.read(part.value);
            txn.write(part.value, (v + 7) % 100);
            return v;
        });
    }

    // T3: hot-spot update touching the first part of every module.
    def rebalance() {
        var self = this;
        return STM.atomic(fun (txn) {
            var acc = 0;
            var m = 0;
            while (m < self.moduleCount) {
                var module = cast(Module, self.modules[m]);
                var part = cast(Part, module.parts[0]);
                var w = txn.read(part.weight);
                txn.write(part.weight, w % 7 + 1);
                acc = acc + w;
                m = m + 1;
            }
            return acc;
        });
    }
}

class Bench {
    static def run(n) {
        var bench = new Bench7(4, 8);
        var pool = new ThreadPool(4);
        var latch = new CountDownLatch(4);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 4) {
            var wid = w;
            pool.execute(fun () {
                var acc = 0;
                var op = 0;
                while (op < n) {
                    var kind = (op + wid) % 10;
                    if (kind < 6) {
                        acc = acc + bench.traverse((op + wid) % 4);
                    } else {
                        if (kind < 9) {
                            acc = acc + bench.updatePart(op % 4, op % 8);
                        } else {
                            acc = acc + bench.rebalance();
                        }
                    }
                    op = op + 1;
                }
                total.getAndAdd(acc % 1000003);
                latch.countDown();
            });
            w = w + 1;
        }
        latch.await();
        pool.shutdown();
        return STM.commits.get() % 100000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="stm-bench7",
    suite="renaissance",
    source=SOURCE,
    description="STMBench7-style operation mix: transactional "
                "traversals, part updates and hot-spot rebalances",
    focus="STM, atomics",
    args=(50,),
    warmup=5,
    measure=4,
    deterministic=False,
)
