"""akka-uct: Unbalanced Cobwebbed Tree computation with actors (Table 1).

Focus: actors, message-passing.  Worker "actors" are pool tasks fed
through a blocking mailbox; tree nodes expand with an unbalanced fanout,
exercising park/unpark (idle workers), wait/notify (mailbox), and atomic
work counters — the Akka-style profile of Figure 2's left end.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class UctNode {
    var depth;
    var value;

    def init(depth, value) {
        this.depth = depth;
        this.value = value;
    }
}

class UctTree {
    var mailbox;      // BlockingQueue of UctNode
    var pending;      // AtomicLong of outstanding nodes
    var visited;      // AtomicLong
    var checksum;     // AtomicLong
    var maxDepth;

    def init(maxDepth) {
        this.mailbox = new BlockingQueue(2048);
        this.pending = new AtomicLong(0);
        this.visited = new AtomicLong(0);
        this.checksum = new AtomicLong(0);
        this.maxDepth = maxDepth;
    }

    def push(node) {
        this.pending.incrementAndGet();
        this.mailbox.put(node);
    }

    def expand(node) {
        this.visited.incrementAndGet();
        this.checksum.getAndAdd(node.value % 1000);
        if (node.depth < this.maxDepth) {
            // Unbalanced fanout: deeper on one side (the "cobweb").
            var fanout = 1;
            if (node.value % 3 == 0) { fanout = 3; }
            var c = 0;
            while (c < fanout) {
                this.push(new UctNode(node.depth + 1,
                                      node.value * 31 + c + 7));
                c = c + 1;
            }
        }
        if (this.pending.getAndAdd(0 - 1) == 1) {
            synchronized (this) {
                notifyAll(this);
            }
        }
        return 0;
    }

    def awaitDone() {
        synchronized (this) {
            while (this.pending.get() > 0) {
                wait(this);
            }
        }
        return 0;
    }

    def workerLoop() {
        while (true) {
            var node = this.mailbox.take();
            if (node instanceof PoisonPill) {
                break;
            }
            this.expand(cast(UctNode, node));
        }
        return 0;
    }
}

class Bench {
    static def run(depth) {
        var tree = new UctTree(depth);
        var workers = new ref[4];
        var w = 0;
        while (w < 4) {
            var t = new Thread(fun () { tree.workerLoop(); });
            t.daemon = true;
            t.start();
            workers[w] = t;
            w = w + 1;
        }
        tree.push(new UctNode(0, 17));
        tree.awaitDone();
        w = 0;
        while (w < 4) {
            tree.mailbox.put(new PoisonPill());
            w = w + 1;
        }
        w = 0;
        while (w < 4) {
            var t = cast(Thread, workers[w]);
            t.join();
            w = w + 1;
        }
        return tree.visited.get() * 1000 + tree.checksum.get() % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="akka-uct",
    suite="renaissance",
    source=SOURCE,
    description="Unbalanced tree expansion over actor-style workers with "
                "a blocking mailbox",
    focus="actors, message-passing",
    args=(9,),
    warmup=5,
    measure=4,
    deterministic=False,
)
