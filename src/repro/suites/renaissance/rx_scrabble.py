"""rx-scrabble: the Scrabble puzzle on Reactive Extensions (Table 1).

Focus: streaming.  The same Scrabble scoring as :mod:`scrabble`, but
through a push-based observable pipeline: an observable source emits
words to a chain of operator objects (map/filter/subscriber), each hop a
virtual ``onNext`` dispatch — the Rx flavor whose MHS sensitivity is
smaller than the pull-based Streams version, as in the paper (1% vs 22%).
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
interface Observer {
    def onNext(value);
}

class MapOperator implements Observer {
    var fn;
    var downstream;

    def init(fn, downstream) {
        this.fn = fn;
        this.downstream = downstream;
    }

    def onNext(value) {
        var f = this.fn;
        return this.downstream.onNext(f(value));
    }
}

class FilterOperator implements Observer {
    var pred;
    var downstream;

    def init(pred, downstream) {
        this.pred = pred;
        this.downstream = downstream;
    }

    def onNext(value) {
        var p = this.pred;
        if (p(value)) {
            return this.downstream.onNext(value);
        }
        return 0;
    }
}

class MaxSubscriber implements Observer {
    var best;

    def init() { this.best = 0; }

    def onNext(value) {
        if (value > this.best) {
            this.best = value;
        }
        return value;
    }
}

class RxScrabble {
    var words;        // ref array of letter-code arrays
    var scores;

    def init(n) {
        this.scores = new int[26];
        var values = "1332142418513113a1114484a1";
        var i = 0;
        while (i < 26) {
            var c = Str.charAt(values, i);
            if (c == 'a') { this.scores[i] = 10; }
            else { this.scores[i] = c - '0'; }
            i = i + 1;
        }
        var syllables = "theforandwithfromhavethisthatwillyourwhenwhat";
        var r = new Random(5);
        this.words = new ref[n];
        i = 0;
        while (i < n) {
            var a = r.nextInt(30);
            var w = new int[7];
            var j = 0;
            while (j < 7) {
                w[j] = Str.charAt(syllables, a + (j % 5)) - 'a';
                j = j + 1;
            }
            this.words[i] = w;
            i = i + 1;
        }
    }

    def score(word) {
        var acc = 0;
        var n = len(word);
        var i = 0;
        while (i < n) {
            acc = acc + this.scores[word[i]];
            i = i + 1;
        }
        return acc;
    }

    def play() {
        var self = this;
        var sink = new MaxSubscriber();
        var chain = new MapOperator(fun (w) self.score(w),
                     new FilterOperator(fun (s) s > 4, sink));
        var i = 0;
        var n = len(this.words);
        while (i < n) {
            chain.onNext(this.words[i]);
            i = i + 1;
        }
        return sink.best;
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new RxScrabble(n);
        }
        var rx = cast(RxScrabble, Bench.cached);
        var acc = 0;
        var round = 0;
        while (round < 10) {
            acc = acc + rx.play();
            round = round + 1;
        }
        return acc;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="rx-scrabble",
    suite="renaissance",
    source=SOURCE,
    description="Scrabble scoring through a push-based observable "
                "operator chain",
    focus="streaming",
    args=(110,),
    warmup=5,
    measure=4,
)
"""Operator chaining note: the FilterOperator is constructed inline as
the MapOperator's downstream argument — a nested `new` expression."""
