"""scrabble: J. Paumard's Shakespeare-plays-Scrabble puzzle with
Java-8-style Streams (Table 1).

Focus: data-parallel, memory-bound.  Every pipeline stage takes a
lambda, so after ``Stream.map``/``filter``/``reduce`` inline into the
hot method the handle calls become constant — the Method-Handle
Simplification (MHS) headline (paper: ≈22% impact), including the
per-character histogram lambda the paper dissects in Section 5.4.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Scrabble {
    var words;        // ArrayList of strings
    var scores;       // letter scores ('a'..'z')

    def init(n) {
        this.scores = new int[26];
        var values = "1332142418513113a1114484a1";   // 'a' means 10
        var i = 0;
        while (i < 26) {
            var c = Str.charAt(values, i);
            if (c == 'a') { this.scores[i] = 10; }
            else { this.scores[i] = c - '0'; }
            i = i + 1;
        }
        this.words = new ArrayList();
        var syllables = "theforandwithfromhavethisthatwillyourwhenwhat";
        var r = new Random(5);
        i = 0;
        while (i < n) {
            var a = r.nextInt(30);
            var b = r.nextInt(30);
            // Words are letter-code arrays (as String.chars() exposes).
            var w = new int[9];
            var j = 0;
            while (j < 5) {
                w[j] = Str.charAt(syllables, a + j) - 'a';
                j = j + 1;
            }
            j = 0;
            while (j < 4) {
                w[5 + j] = Str.charAt(syllables, b + j) - 'a';
                j = j + 1;
            }
            this.words.add(w);
            i = i + 1;
        }
    }

    // The lambda the paper profiles: per-word letter histogram.
    def histogramScore(word) {
        var hist = new int[26];
        var i = 0;
        var n = len(word);
        while (i < n) {
            var c = word[i];
            if (c >= 0) {
                if (c < 26) { hist[c] = hist[c] + 1; }
            }
            i = i + 1;
        }
        var score = 0;
        i = 0;
        while (i < 26) {
            var have = hist[i];
            if (have > 2) { have = 2; }     // only 2 blanks available
            score = score + have * this.scores[i];
            i = i + 1;
        }
        return score;
    }

    def best() {
        var self = this;
        return Stream.of(this.words)
            .map(fun (w) self.histogramScore(w))
            .filter(fun (s) s > 5)
            .reduce(0, fun (a, b) {
                if (b > a) { return b; }
                return a;
            });
    }

    def total() {
        var self = this;
        return Stream.of(this.words)
            .map(fun (w) self.histogramScore(w))
            .sum();
    }
}

class Bench {
    static var game = null;

    static def run(n) {
        if (Bench.game == null) {
            Bench.game = new Scrabble(n);
        }
        var g = cast(Scrabble, Bench.game);
        var acc = 0;
        var round = 0;
        while (round < 10) {
            acc = acc + g.best() * 7 + g.total();
            round = round + 1;
        }
        return acc;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="scrabble",
    suite="renaissance",
    source=SOURCE,
    description="Scrabble scoring over a word corpus with lambda-driven "
                "stream pipelines",
    focus="data-parallel, memory-bound",
    args=(90,),
    warmup=6,
    measure=4,
)
