"""neo4j-analytics: analytical queries and transactions on a graph
database (Table 1).

Focus: query processing, transactions.  An adjacency-list property
graph answers neighborhood-aggregation queries while STM transactions
update node properties concurrently — the mixed analytical/transactional
profile of the Neo4J workload.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class GraphDb {
    var adjacency;    // ref array: int[] neighbor lists
    var property;     // STMRef per node
    var nodes;

    def init(nodes, degree) {
        this.nodes = nodes;
        this.adjacency = new ref[nodes];
        this.property = new ref[nodes];
        var r = new Random(606);
        var i = 0;
        while (i < nodes) {
            var adj = new int[degree];
            var j = 0;
            while (j < degree) {
                adj[j] = (i * 7 + j * 13 + r.nextInt(nodes)) % nodes;
                j = j + 1;
            }
            this.adjacency[i] = adj;
            this.property[i] = new STMRef(i % 10);
            i = i + 1;
        }
    }

    // Analytical query: two-hop neighborhood property sum.
    def twoHopSum(node) {
        var acc = 0;
        var adj = this.adjacency[node];
        var n1 = len(adj);
        var i = 0;
        while (i < n1) {
            var mid = adj[i];
            var ref1 = cast(STMRef, this.property[mid]);
            acc = acc + atomicGet(ref1.value);
            var adj2 = this.adjacency[mid];
            var n2 = len(adj2);
            var j = 0;
            while (j < n2) {
                var ref2 = cast(STMRef, this.property[adj2[j]]);
                acc = acc + atomicGet(ref2.value);
                j = j + 1;
            }
            i = i + 1;
        }
        return acc;
    }

    // Transaction: move property value along an edge.
    def transfer(fromNode, toNode) {
        var src = cast(STMRef, this.property[fromNode]);
        var dst = cast(STMRef, this.property[toNode]);
        return STM.atomic(fun (txn) {
            var a = txn.read(src);
            var b = txn.read(dst);
            if (a > 0) {
                txn.write(src, a - 1);
                txn.write(dst, b + 1);
            }
            return a + b;
        });
    }
}

class Bench {
    static def run(n) {
        var db = new GraphDb(n, 4);
        var pool = new ThreadPool(4);
        var latch = new CountDownLatch(4);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 4) {
            var wid = w;
            pool.execute(fun () {
                var acc = 0;
                var q = 0;
                while (q < n) {
                    var node = (q * 17 + wid * 5) % db.nodes;
                    if (q % 3 == 0) {
                        acc = acc + db.transfer(node, (node + 1) % db.nodes);
                    } else {
                        acc = acc + db.twoHopSum(node);
                    }
                    q = q + 1;
                }
                total.getAndAdd(acc % 1000003);
                latch.countDown();
            });
            w = w + 1;
        }
        latch.await();
        pool.shutdown();
        return total.get() % 1000000 + STM.commits.get() * 1000000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="neo4j-analytics",
    suite="renaissance",
    source=SOURCE,
    description="Graph database: two-hop analytical queries mixed with "
                "STM property-transfer transactions",
    focus="query processing, transactions",
    args=(60,),
    warmup=5,
    measure=4,
    deterministic=False,
)
