"""als: Alternating Least Squares matrix factorization (Table 1).

Focus: data-parallel, compute-bound.  The factor-update sweeps are
element-wise double-array loops with no cross-iteration dependencies —
vectorizable once guard motion clears the bounds checks, giving the
paper's GM→LV interaction (paper: ≈10% LV impact, ≈11% GM).
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Als {
    var ratings;      // users * items dense rating matrix
    var userf;        // users * rank
    var itemf;        // items * rank
    var users;
    var items;
    var rank;

    def init(users, items, rank) {
        this.users = users;
        this.items = items;
        this.rank = rank;
        this.ratings = new double[users * items];
        this.userf = new double[users * rank];
        this.itemf = new double[items * rank];
        var r = new Random(77);
        var i = 0;
        while (i < users * items) {
            this.ratings[i] = i2d(r.nextInt(5) + 1);
            i = i + 1;
        }
        i = 0;
        while (i < users * rank) {
            this.userf[i] = r.nextDouble();
            i = i + 1;
        }
        i = 0;
        while (i < items * rank) {
            this.itemf[i] = r.nextDouble();
            i = i + 1;
        }
    }

    def predictErr(u, it) {
        var acc = 0.0;
        var ub = u * this.rank;
        var ib = it * this.rank;
        var uf = this.userf;
        var vf = this.itemf;
        var rk = this.rank;
        var k = 0;
        while (k < rk) {
            acc = acc + uf[ub + k] * vf[ib + k];
            k = k + 1;
        }
        return this.ratings[u * this.items + it] - acc;
    }

    // Element-wise factor update: the vectorizable sweep.
    def axpy(dst, base, src, sbase, n, alpha) {
        var i = 0;
        while (i < n) {
            dst[base + i] = dst[base + i] + alpha * src[sbase + i];
            i = i + 1;
        }
        return n;
    }

    def sweepUsers(pool, chunks, rate) {
        var self = this;
        var latch = new CountDownLatch(chunks);
        var per = (this.users + chunks - 1) / chunks;
        var c = 0;
        while (c < chunks) {
            var lo = c * per;
            var hi = lo + per;
            if (hi > this.users) { hi = this.users; }
            pool.execute(fun () {
                var u = lo;
                while (u < hi) {
                    var it = 0;
                    while (it < self.items) {
                        var err = self.predictErr(u, it);
                        self.axpy(self.userf, u * self.rank,
                                  self.itemf, it * self.rank,
                                  self.rank, rate * err);
                        it = it + 1;
                    }
                    u = u + 1;
                }
                latch.countDown();
            });
            c = c + 1;
        }
        latch.await();
        return this.userf[0];
    }

    def rmse() {
        var acc = 0.0;
        var u = 0;
        while (u < this.users) {
            var it = 0;
            while (it < this.items) {
                var e = this.predictErr(u, it);
                acc = acc + e * e;
                it = it + 1;
            }
            u = u + 1;
        }
        return Math.sqrt(acc / i2d(this.users * this.items));
    }
}

class Bench {
    static def run(n) {
        var als = new Als(n, 12, 16);
        var pool = new ThreadPool(4);
        var epoch = 0;
        while (epoch < 2) {
            als.sweepUsers(pool, 4, 0.002);
            epoch = epoch + 1;
        }
        pool.shutdown();
        return d2i(als.rmse() * 100000.0);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="als",
    suite="renaissance",
    source=SOURCE,
    description="Alternating least squares with element-wise factor "
                "update sweeps",
    focus="data-parallel, compute-bound",
    args=(24,),
    warmup=6,
    measure=4,
)
