"""db-shootout: parallel in-memory database shootout (Table 1).

Focus: query processing, data structures.  A hash-indexed table serves
point lookups, inserts and small range scans from several client
threads, mirroring the Java in-memory-DB comparison workload.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Row {
    var key;
    var a;
    var b;

    def init(key, a, b) {
        this.key = key;
        this.a = a;
        this.b = b;
    }
}

class Table {
    var index;       // HashMap key -> Row
    var rows;        // ArrayList of Row (scan order)
    var writes;      // AtomicLong

    def init() {
        this.index = new HashMap();
        this.rows = new ArrayList();
        this.writes = new AtomicLong(0);
    }

    synchronized def insert(key, a, b) {
        var row = new Row(key, a, b);
        this.index.put(key, row);
        this.rows.add(row);
        this.writes.incrementAndGet();
        return row;
    }

    synchronized def lookup(key) {
        return this.index.get(key);
    }

    synchronized def scanSum(lo, count) {
        var acc = 0;
        var n = this.rows.size();
        var i = lo % n;
        var seen = 0;
        while (seen < count) {
            var row = cast(Row, this.rows.get(i));
            acc = acc + row.a;
            i = (i + 1) % n;
            seen = seen + 1;
        }
        return acc;
    }
}

class Bench {
    static def run(n) {
        var table = new Table();
        var i = 0;
        while (i < n) {
            table.insert(i, i * 3, i * 7);
            i = i + 1;
        }
        var pool = new ThreadPool(4);
        var latch = new CountDownLatch(4);
        var total = new AtomicLong(0);
        var client = 0;
        while (client < 4) {
            var cid = client;
            pool.execute(fun () {
                var acc = 0;
                var q = 0;
                while (q < n) {
                    var key = (q * 13 + cid * 31) % n;
                    if (q % 11 == 0) {
                        table.insert(n + q * 4 + cid, q, cid);
                    } else {
                        if (q % 7 == 0) {
                            acc = acc + table.scanSum(key, 8);
                        } else {
                            var row = cast(Row, table.lookup(key));
                            if (row != null) {
                                acc = acc + row.b;
                            }
                        }
                    }
                    q = q + 1;
                }
                total.getAndAdd(acc % 1000003);
                latch.countDown();
            });
            client = client + 1;
        }
        latch.await();
        pool.shutdown();
        return table.writes.get() * 1000 + total.get() % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="db-shootout",
    suite="renaissance",
    source=SOURCE,
    description="Point lookups, inserts and range scans on a locked "
                "hash-indexed table from four clients",
    focus="query processing, data structures",
    args=(150,),
    warmup=5,
    measure=4,
    deterministic=False,
)
