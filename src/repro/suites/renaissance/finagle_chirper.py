"""finagle-chirper: a microblogging service on futures (Table 1).

Focus: network stack, futures, atomics.  Each request allocates a
Promise, mutates it through CAS a few times, and either discards it or
publishes it to a feed — the com.twitter.util.Promise pattern Section
5.1 names as the Escape-Analysis-with-Atomic-Operations (EAWA) target
(paper: ≈24% impact).  The "network" is the loopback analogue: request
queues between client and server threads in one process.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Chirp {
    var author;
    var text;

    def init(author, text) {
        this.author = author;
        this.text = text;
    }
}

class Feed {
    var chirps;
    var counter;     // lock-free size counter (reads dominate)

    def init() {
        this.chirps = new ArrayList();
        this.counter = new AtomicLong(0);
    }

    def post(chirp) {
        synchronized (this) {
            this.chirps.add(chirp);
        }
        return this.counter.incrementAndGet();
    }

    def size() {
        return this.counter.get();
    }
}

class Service {
    var feed;
    var requests;    // AtomicLong

    def init() {
        this.feed = new Feed();
        this.requests = new AtomicLong(0);
    }

    // The EAWA pattern (paper 5.1: java.util.concurrent.atomic.
    // AtomicReference / com.twitter.util.Promise): a response holder is
    // allocated, its state advanced through CAS, and consumed locally —
    // it never escapes the request handler.
    def handlePost(author, k) {
        this.requests.incrementAndGet();
        var response = new AtomicRef(0);
        response.compareAndSet(0,
            this.feed.post(new Chirp(author, "chirp-" + k)));
        response.compareAndSet(0, 0 - 1);    // timeout arm: already set
        return response.get();
    }

    def handleRead() {
        var response = new AtomicRef(0);
        response.compareAndSet(0, this.feed.size() + 1);
        return response.get();
    }
}

class Bench {
    static var pool = null;
    static var service = null;

    static def run(n) {
        if (Bench.pool == null) {
            Bench.pool = new ThreadPool(4);
            Bench.service = new Service();
        }
        var pool = cast(ThreadPool, Bench.pool);
        var service = cast(Service, Bench.service);
        var futures = new ArrayList();
        var user = 0;
        while (user < 4) {
            var uid = user;
            futures.add(pool.submit(fun () {
                var acc = 0;
                var k = 0;
                while (k < n) {
                    if (k % 8 == 0) {
                        acc = acc + service.handlePost(uid, k);
                    } else {
                        acc = acc + service.handleRead();
                    }
                    k = k + 1;
                }
                return acc % 1000003;
            }));
            user = user + 1;
        }
        var total = 0;
        var f = 0;
        while (f < futures.size()) {
            var p = cast(Promise, futures.get(f));
            total = (total + p.get()) % 1000003;
            f = f + 1;
        }
        return total;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="finagle-chirper",
    suite="renaissance",
    source=SOURCE,
    description="Microblogging service: request handlers allocate and "
                "CAS-complete promises that rarely escape",
    focus="network stack, futures, atomics",
    args=(100,),
    warmup=6,
    measure=4,
    deterministic=False,
)
