"""par-mnemonics: phone-number mnemonics on parallel streams (Table 1).

Focus: data-parallel, memory-bound.  The same keypad-encoding kernel as
``streams-mnemonics``, but the classification pass fans out over a
thread pool through ``Stream.parMap`` — the parallel-streams variant
the real suite ships alongside the sequential one.  Each chunk touches
a disjoint slice of the token array (memory-bound scan) and publishes
into a shared ``AtomicLong`` checksum, so the profile adds atomics and
park/unpark to the DS-style repeated ``instanceof`` checks.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class PToken { def init() { } }
class PWordToken extends PToken {
    var word;        // letter-code array
    def init(word) { this.word = word; }
}
class PDigitToken extends PToken {
    var digit;
    def init(digit) { this.digit = digit; }
}

class ParMnemonics {
    var tokens;       // ref array of PToken
    var count;
    var sink;         // AtomicLong checksum shared across chunks

    def init(n) {
        this.count = n;
        this.tokens = new ref[n];
        this.sink = new AtomicLong(0);
        var words = "maptreecodejavarunsfastheapnodelistcallsite";
        var r = new Random(29);
        var i = 0;
        while (i < n) {
            if (r.nextInt(3) == 0) {
                this.tokens[i] = new PDigitToken(r.nextInt(10));
            } else {
                var a = (r.nextInt(38)) % 38;
                var w = new int[4];
                var j = 0;
                while (j < 4) {
                    w[j] = Str.charAt(words, a + j) - 'a';
                    j = j + 1;
                }
                this.tokens[i] = new PWordToken(w);
            }
            i = i + 1;
        }
    }

    def wordValue(w) {
        // digit for each letter, phone-keypad style.
        var total = 0;
        var i = 0;
        var n = len(w);
        while (i < n) {
            var c = w[i];
            total = total * 10 + (c / 3 + 2) % 10;
            i = i + 1;
        }
        return total;
    }

    // Same DS pattern as the sequential benchmark: instanceof on the
    // same value re-tested after merges, here inside the parMap lambda.
    def encode(t) {
        var v = 0;
        if (t instanceof PWordToken) {
            v = v + 1;
        } else {
            v = v + 2;
        }
        if (t instanceof PWordToken) {
            var w = cast(PWordToken, t);
            v = v + this.wordValue(w.word) % 97;
        }
        if (t instanceof PWordToken) {
            v = v + 3;
        } else {
            var d = cast(PDigitToken, t);
            v = v + d.digit;
        }
        if (t instanceof PWordToken) {
            v = v + 7;
        }
        this.sink.getAndAdd(v);
        return v;
    }

    def parPass(pool) {
        var self = this;
        return Stream.wrap(this.tokens, this.count)
            .parMap(pool, 8, fun (t) self.encode(t))
            .reduce(0, fun (a, b) (a + b) % 1000003);
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new ParMnemonics(n);
        }
        var m = cast(ParMnemonics, Bench.cached);
        m.sink.set(0);
        var pool = new ThreadPool(4);
        var acc = 0;
        var round = 0;
        while (round < 6) {
            acc = (acc + m.parPass(pool)) % 1000000007;
            round = round + 1;
        }
        pool.shutdown();
        return acc * 1000 + m.sink.get() % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="par-mnemonics",
    suite="renaissance",
    source=SOURCE,
    description="Phone mnemonics fanned out over a thread pool with "
                "parallel streams and a shared atomic checksum",
    focus="data-parallel, memory-bound",
    args=(260,),
    warmup=6,
    measure=4,
)
