"""movie-lens: recommender on the MovieLens dataset (Table 1).

Focus: data-parallel, compute-bound.  A synthetic rating matrix stands
in for the proprietary trace (the dataset is replaced per the
substitution rule — the access pattern and compute shape of
user-similarity scoring is what matters).  Top-N recommendation scans
run per user across the pool.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class MovieLens {
    var ratings;      // users x movies (0 = unrated)
    var users;
    var movies;

    def init(users, movies) {
        this.users = users;
        this.movies = movies;
        this.ratings = new int[users * movies];
        var r = new Random(404);
        var i = 0;
        while (i < users * movies) {
            if (r.nextInt(3) == 0) {
                this.ratings[i] = r.nextInt(5) + 1;
            }
            i = i + 1;
        }
    }

    def similarity(u, v) {
        var m = this.movies;
        var rt = this.ratings;
        var dot = 0;
        var nu = 0;
        var nv = 0;
        var j = 0;
        while (j < m) {
            var a = rt[u * m + j];
            var b = rt[v * m + j];
            dot = dot + a * b;
            nu = nu + a * a;
            nv = nv + b * b;
            j = j + 1;
        }
        if (nu == 0) { return 0.0; }
        if (nv == 0) { return 0.0; }
        return i2d(dot) / Math.sqrt(i2d(nu) * i2d(nv));
    }

    def recommendScore(u) {
        // Sum similarity-weighted ratings from every other user.
        var best = 0.0;
        var v = 0;
        while (v < this.users) {
            if (v != u) {
                var s = this.similarity(u, v);
                if (s > best) { best = s; }
            }
            v = v + 1;
        }
        return best;
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new MovieLens(n, 24);
        }
        var ml = cast(MovieLens, Bench.cached);
        var pool = new ThreadPool(4);
        var latch = new CountDownLatch(4);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 4) {
            var wid = w;
            pool.execute(fun () {
                var acc = 0.0;
                var u = wid;
                while (u < ml.users) {
                    acc = acc + ml.recommendScore(u);
                    u = u + 4;
                }
                total.getAndAdd(d2i(acc * 1000.0));
                latch.countDown();
            });
            w = w + 1;
        }
        latch.await();
        pool.shutdown();
        return total.get();
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="movie-lens",
    suite="renaissance",
    source=SOURCE,
    description="User-similarity recommender over a synthetic rating "
                "matrix (MovieLens stand-in)",
    focus="data-parallel, compute-bound",
    args=(28,),
    warmup=5,
    measure=4,
)
