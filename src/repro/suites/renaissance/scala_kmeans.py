"""scala-kmeans: K-means on functional Scala collections (Table 1).

Focus: data-parallel, allocation-heavy.  Unlike ``fj-kmeans`` (the
fork/join + synchronized-Vector variant), this models the Scala
idiom: a sequential groupBy/averaging pipeline written against
streams and lambdas, allocating fresh assignment lists every
iteration.  The closures make it an MHS (method-handle simplification)
workload and the per-round collection churn gives it the high object
allocation rate the paper attributes to Scala code.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class SKPoint {
    var x;
    var y;
    def init(x, y) { this.x = x; this.y = y; }
}

class SKMeans {
    var points;      // ArrayList of SKPoint
    var cxs;
    var cys;
    var k;

    def init(count, k) {
        this.k = k;
        this.points = new ArrayList();
        this.cxs = new double[k];
        this.cys = new double[k];
        var r = new Random(677);
        var i = 0;
        while (i < count) {
            this.points.add(new SKPoint(r.nextDouble() * 100.0,
                                        r.nextDouble() * 100.0));
            i = i + 1;
        }
        this.reset();
    }

    def reset() {
        var i = 0;
        while (i < this.k) {
            var p = cast(SKPoint, this.points.get(i));
            this.cxs[i] = p.x;
            this.cys[i] = p.y;
            i = i + 1;
        }
    }

    def nearest(p) {
        var best = 0;
        var bestDist = 1.0e18;
        var c = 0;
        while (c < this.k) {
            var dx = p.x - this.cxs[c];
            var dy = p.y - this.cys[c];
            var d = dx * dx + dy * dy;
            if (d < bestDist) {
                bestDist = d;
                best = c;
            }
            c = c + 1;
        }
        return best;
    }

    // The Scala-collections idiom: groupBy into per-cluster lists
    // (fresh allocations every round), then average each group.
    def iterate() {
        var self = this;
        var groups = new ref[this.k];
        var c = 0;
        while (c < this.k) {
            groups[c] = new ArrayList();
            c = c + 1;
        }
        Stream.of(this.points).forEach(fun (p) {
            var g = cast(ArrayList, groups[self.nearest(p)]);
            g.add(p);
        });
        var moved = 0;
        c = 0;
        while (c < this.k) {
            var g = cast(ArrayList, groups[c]);
            if (g.size() > 0) {
                var sx = Stream.of(g).map(fun (p) cast(SKPoint, p).x).sum();
                var sy = Stream.of(g).map(fun (p) cast(SKPoint, p).y).sum();
                var nx = sx / i2d(g.size());
                var ny = sy / i2d(g.size());
                if (nx != this.cxs[c]) { moved = moved + 1; }
                this.cxs[c] = nx;
                this.cys[c] = ny;
            }
            c = c + 1;
        }
        return moved;
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new SKMeans(n, 5);
        }
        var km = cast(SKMeans, Bench.cached);
        km.reset();
        var moved = 0;
        var round = 0;
        while (round < 6) {
            moved = moved + km.iterate();
            round = round + 1;
        }
        var check = d2i(km.cxs[0] + km.cys[0] + km.cxs[4] + km.cys[4]);
        return moved * 1000 + check % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="scala-kmeans",
    suite="renaissance",
    source=SOURCE,
    description="K-means with functional groupBy/averaging over stream "
                "pipelines, allocating fresh groups every iteration",
    focus="data-parallel, allocation-heavy",
    args=(240,),
    warmup=6,
    measure=4,
)
