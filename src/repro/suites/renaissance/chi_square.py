"""chi-square: parallel chi-square test (Table 1, Spark ML analogue).

Focus: data-parallel, machine learning.  Observation counting fans out
over the pool; the statistic loops are double-array arithmetic with
stream-style lambdas over the category summaries.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class ChiSquare {
    var observed;     // categories x buckets counts
    var categories;
    var buckets;
    var samples;      // int array of (category, bucket) encoded pairs

    def init(n, categories, buckets) {
        this.categories = categories;
        this.buckets = buckets;
        this.observed = new int[categories * buckets];
        this.samples = new int[n];
        var r = new Random(1234);
        var i = 0;
        while (i < n) {
            var cat = r.nextInt(categories);
            var bucket = (cat + r.nextInt(3)) % buckets;
            this.samples[i] = cat * buckets + bucket;
            i = i + 1;
        }
    }

    def countChunk(lo, hi, counts) {
        var s = this.samples;
        var i = lo;
        while (i < hi) {
            var code = s[i];
            counts[code] = counts[code] + 1;
            i = i + 1;
        }
        return hi - lo;
    }

    def statistic(pool, chunks) {
        var self = this;
        var n = len(this.samples);
        var partials = new ref[chunks];
        var latch = new CountDownLatch(chunks);
        var per = (n + chunks - 1) / chunks;
        var c = 0;
        while (c < chunks) {
            var lo = c * per;
            var hi = lo + per;
            if (hi > n) { hi = n; }
            var counts = new int[this.categories * this.buckets];
            partials[c] = counts;
            pool.execute(fun () {
                self.countChunk(lo, hi, counts);
                latch.countDown();
            });
            c = c + 1;
        }
        latch.await();
        var cells = this.categories * this.buckets;
        var total = this.observed;
        var i = 0;
        while (i < cells) {
            total[i] = 0;
            i = i + 1;
        }
        c = 0;
        while (c < chunks) {
            var counts = partials[c];
            i = 0;
            while (i < cells) {
                total[i] = total[i] + counts[i];
                i = i + 1;
            }
            c = c + 1;
        }
        // chi^2 against the uniform expectation.
        var expected = i2d(n) / i2d(cells);
        var chi = 0.0;
        i = 0;
        while (i < cells) {
            var d = i2d(total[i]) - expected;
            chi = chi + d * d / expected;
            i = i + 1;
        }
        return chi;
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new ChiSquare(n, 6, 8);
        }
        var cs = cast(ChiSquare, Bench.cached);
        var pool = new ThreadPool(4);
        var acc = 0.0;
        var round = 0;
        while (round < 4) {
            acc = acc + cs.statistic(pool, 8);
            round = round + 1;
        }
        pool.shutdown();
        return d2i(acc);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="chi-square",
    suite="renaissance",
    source=SOURCE,
    description="Parallel chi-square statistic over bucketed samples",
    focus="data-parallel, machine learning",
    args=(4000,),
    warmup=5,
    measure=4,
)
