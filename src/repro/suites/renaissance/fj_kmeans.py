"""fj-kmeans: K-means with the fork/join layer (paper Table 1).

Focus: task-parallel, concurrent data structures.  The reassignment
loop accumulates cluster members through a *synchronized* ``Vector`` —
the ``java.util.Vector``-in-a-hot-loop pattern Section 5.2 identifies,
making this the Loop-Wide Lock Coarsening (LLC) headline benchmark
(paper: ≈71% impact).
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class KMeans {
    var points;      // double array, 2 per point
    var count;
    var cxs;         // cluster centroid xs
    var cys;
    var k;
    var members;     // Vector of assignments per cluster (synchronized)

    def init(count, k) {
        this.count = count;
        this.k = k;
        this.points = new double[count * 2];
        this.cxs = new double[k];
        this.cys = new double[k];
        var r = new Random(991);
        var i = 0;
        while (i < count * 2) {
            this.points[i] = r.nextDouble() * 100.0;
            i = i + 1;
        }
        i = 0;
        while (i < k) {
            this.cxs[i] = this.points[i * 2];
            this.cys[i] = this.points[i * 2 + 1];
            i = i + 1;
        }
        this.members = null;
    }

    def assignChunk(lo, hi, counts, sizes, sumx, sumy) {
        var i = lo;
        while (i < hi) {
            var px = this.points[i * 2];
            var py = this.points[i * 2 + 1];
            var best = 0;
            var bestDist = 1.0e18;
            var kk = this.k;
            var c = 0;
            while (c < kk) {
                var dx = px - this.cxs[c];
                var dy = py - this.cys[c];
                var d = dx * dx + dy * dy;
                if (d < bestDist) {
                    bestDist = d;
                    best = c;
                }
                c = c + 1;
            }
            // The paper's pattern: a synchronized collection updated in
            // the hot loop (LLC coarsens these monitor operations).
            counts.add(best);
            synchronized (sumx) {
                sizes[best] = sizes[best] + 1;
                sumx[best] = sumx[best] + px;
                sumy[best] = sumy[best] + py;
            }
            i = i + 1;
        }
        return hi - lo;
    }

    def iterate(pool, tasks) {
        var counts = new Vector();
        var sizes = new int[this.k];
        var sumx = new double[this.k];
        var sumy = new double[this.k];
        var self = this;
        var per = (this.count + tasks - 1) / tasks;
        var forked = new ArrayList();
        var t = 0;
        while (t < tasks) {
            var lo = t * per;
            var hi = lo + per;
            if (hi > this.count) { hi = this.count; }
            var task = new ForkJoinTask(pool, fun ()
                self.assignChunk(lo, hi, counts, sizes, sumx, sumy));
            forked.add(task.fork());
            t = t + 1;
        }
        t = 0;
        while (t < forked.size()) {
            var task = cast(ForkJoinTask, forked.get(t));
            task.join();
            t = t + 1;
        }
        // Recompute centroids from the accumulated sums.
        var c = 0;
        while (c < this.k) {
            if (sizes[c] > 0) {
                this.cxs[c] = sumx[c] / i2d(sizes[c]);
                this.cys[c] = sumy[c] / i2d(sizes[c]);
            }
            c = c + 1;
        }
        return counts.size();
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new KMeans(n, 4);
        }
        var km = cast(KMeans, Bench.cached);
        var pool = new ThreadPool(4);
        var total = 0;
        var round = 0;
        while (round < 4) {
            total = total + km.iterate(pool, 8);
            round = round + 1;
        }
        pool.shutdown();
        var check = d2i(km.cxs[0] + km.cys[0] + km.cxs[3] + km.cys[3]);
        return total * 1000 + check % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="fj-kmeans",
    suite="renaissance",
    source=SOURCE,
    description="K-means clustering on a fork/join pool with a "
                "synchronized Vector accumulating assignments",
    focus="task-parallel, concurrent data structures",
    args=(220,),
    warmup=6,
    measure=4,
    deterministic=False,
)
