"""reactors: message-passing workloads in the Reactors framework
(Table 1).

Focus: actors, message-passing, critical sections.  A ring of reactors
forwards a token (ping-ring), plus a fan-in counting protocol — each
reactor owns a guarded-block mailbox and a synchronized event log, the
paper's "message-passing + critical sections" mix.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Reactor {
    var mailbox;      // BlockingQueue
    var log;          // shared Vector (critical sections)
    var next;         // next reactor in the ring
    var hops;         // AtomicLong

    def init(log) {
        this.mailbox = new BlockingQueue(128);
        this.log = log;
        this.next = null;
        this.hops = new AtomicLong(0);
    }

    def eventLoop(rounds) {
        var done = 0;
        while (done < rounds) {
            var token = this.mailbox.take();
            this.hops.incrementAndGet();
            this.log.add(token);
            if (token > 0) {
                this.next.mailbox.put(token - 1);
            } else {
                done = rounds;     // ring drained
            }
            done = done + 1;
        }
        return this.hops.get();
    }
}

class Bench {
    static def run(n) {
        var ringSize = 4;
        var log = new Vector();
        var reactors = new ref[ringSize];
        var i = 0;
        while (i < ringSize) {
            reactors[i] = new Reactor(log);
            i = i + 1;
        }
        i = 0;
        while (i < ringSize) {
            var r = cast(Reactor, reactors[i]);
            r.next = cast(Reactor, reactors[(i + 1) % ringSize]);
            i = i + 1;
        }
        var latch = new CountDownLatch(ringSize);
        i = 0;
        while (i < ringSize) {
            var r = cast(Reactor, reactors[i]);
            var t = new Thread(fun () {
                r.eventLoop(n);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            i = i + 1;
        }
        // Inject the token: it decrements per hop until zero.
        var first = cast(Reactor, reactors[0]);
        first.mailbox.put(ringSize * n - 1);
        latch.await();
        var total = 0;
        i = 0;
        while (i < ringSize) {
            var r = cast(Reactor, reactors[i]);
            total = total + r.hops.get();
            i = i + 1;
        }
        return total * 1000 + log.size() % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="reactors",
    suite="renaissance",
    source=SOURCE,
    description="Token ring of reactors with guarded-block mailboxes and "
                "a synchronized event log",
    focus="actors, message-passing, critical sections",
    args=(60,),
    warmup=5,
    measure=4,
)
"""The token starts at ringSize*n-1 and each hop decrements it; every
reactor sees exactly n tokens, so hop counts are deterministic."""
