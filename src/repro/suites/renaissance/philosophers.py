"""philosophers: dining philosophers on ScalaSTM (Table 1).

Focus: STM, atomics, guarded blocks.  Each philosopher transactionally
grabs both forks (retrying on conflict — the STM abort counter is the
contention signal), eats, then releases.  The reproduction of
ScalaSTM's Reality-Show Philosophers example.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Philosophers {
    var forks;        // STMRef per fork: 0 = free, 1 = taken
    var meals;        // AtomicLong per philosopher
    var seats;

    def init(seats) {
        this.seats = seats;
        this.forks = new ref[seats];
        this.meals = new ref[seats];
        var i = 0;
        while (i < seats) {
            this.forks[i] = new STMRef(0);
            this.meals[i] = new AtomicLong(0);
            i = i + 1;
        }
    }

    def tryEat(seat) {
        var left = cast(STMRef, this.forks[seat]);
        var right = cast(STMRef, this.forks[(seat + 1) % this.seats]);
        var got = STM.atomic(fun (txn) {
            var l = txn.read(left);
            var r = txn.read(right);
            if (l == 0) {
                if (r == 0) {
                    txn.write(left, 1);
                    txn.write(right, 1);
                    return 1;
                }
            }
            return 0;
        });
        if (got == 1) {
            var counter = cast(AtomicLong, this.meals[seat]);
            counter.incrementAndGet();
            STM.atomic(fun (txn) {
                txn.write(left, 0);
                txn.write(right, 0);
                return 0;
            });
            return 1;
        }
        return 0;
    }

    def dine(seat, rounds) {
        var eaten = 0;
        while (eaten < rounds) {
            eaten = eaten + this.tryEat(seat);
        }
        return eaten;
    }
}

class Bench {
    static def run(n) {
        var seats = 5;
        var table = new Philosophers(seats);
        var latch = new CountDownLatch(seats);
        var s = 0;
        while (s < seats) {
            var seat = s;
            var t = new Thread(fun () {
                table.dine(seat, n);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            s = s + 1;
        }
        latch.await();
        var total = 0;
        s = 0;
        while (s < seats) {
            var counter = cast(AtomicLong, table.meals[s]);
            total = total + counter.get();
            s = s + 1;
        }
        return total;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="philosophers",
    suite="renaissance",
    source=SOURCE,
    description="Dining philosophers: transactional fork acquisition "
                "with abort-driven retries",
    focus="STM, atomics, guarded blocks",
    args=(30,),
    warmup=5,
    measure=4,
    expected=150,
)
