"""gauss-mix: Gaussian mixture model EM (Table 1, Spark ML analogue).

Focus: data-parallel, machine learning.  Each EM iteration fans the
E-step over the pool — every chunk accumulates per-component
responsibility partials (weight, mean, variance moments) plus its
slice of the log-likelihood — and the M-step folds the partials into
new component parameters, Math-heavy double arithmetic throughout.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class GaussMix {
    var points;       // 1-D samples
    var k;            // mixture components
    var weight;       // component priors
    var mean;
    var variance;

    def init(n, k) {
        this.k = k;
        this.points = new double[n];
        this.weight = new double[k];
        this.mean = new double[k];
        this.variance = new double[k];
        var r = new Random(4242);
        var i = 0;
        while (i < n) {
            // Draw from k latent clusters spaced along the line.
            var c = r.nextInt(k);
            this.points[i] = i2d(c * 10) + r.nextDouble() * 4.0 - 2.0;
            i = i + 1;
        }
        var j = 0;
        while (j < k) {
            this.weight[j] = 1.0 / i2d(k);
            this.mean[j] = i2d(j * 10) + 1.0;   // deliberately offset
            this.variance[j] = 4.0;
            j = j + 1;
        }
    }

    def density(x, j) {
        var d = x - this.mean[j];
        var v = this.variance[j];
        return this.weight[j]
            * Math.exp(0.0 - d * d / (2.0 * v))
            / Math.sqrt(6.2831853 * v);
    }

    // E-step over [lo, hi): pack per-component moments and the chunk
    // log-likelihood into one partial array [resp_j, sum_j, sq_j]*, ll.
    def estep(lo, hi, partial) {
        var k = this.k;
        var i = lo;
        while (i < hi) {
            var x = this.points[i];
            var total = 0.0;
            var j = 0;
            while (j < k) {
                total = total + this.density(x, j);
                j = j + 1;
            }
            if (total < 0.000000000001) { total = 0.000000000001; }
            j = 0;
            while (j < k) {
                var resp = this.density(x, j) / total;
                partial[j * 3] = partial[j * 3] + resp;
                partial[j * 3 + 1] = partial[j * 3 + 1] + resp * x;
                partial[j * 3 + 2] = partial[j * 3 + 2] + resp * x * x;
                j = j + 1;
            }
            partial[k * 3] = partial[k * 3] + Math.log(total);
            i = i + 1;
        }
        return hi - lo;
    }

    def iterate(pool, chunks) {
        var self = this;
        var n = len(this.points);
        var k = this.k;
        var partials = new ref[chunks];
        var latch = new CountDownLatch(chunks);
        var per = (n + chunks - 1) / chunks;
        var c = 0;
        while (c < chunks) {
            var lo = c * per;
            var hi = lo + per;
            if (hi > n) { hi = n; }
            var partial = new double[k * 3 + 1];
            partials[c] = partial;
            pool.execute(fun () {
                self.estep(lo, hi, partial);
                latch.countDown();
            });
            c = c + 1;
        }
        latch.await();
        // M-step: fold the partials, refit each component.
        var merged = new double[k * 3 + 1];
        c = 0;
        while (c < chunks) {
            var partial = partials[c];
            var i = 0;
            while (i < k * 3 + 1) {
                merged[i] = merged[i] + partial[i];
                i = i + 1;
            }
            c = c + 1;
        }
        var j = 0;
        while (j < k) {
            var resp = merged[j * 3];
            if (resp < 0.000000000001) { resp = 0.000000000001; }
            var mu = merged[j * 3 + 1] / resp;
            var var_ = merged[j * 3 + 2] / resp - mu * mu;
            if (var_ < 0.01) { var_ = 0.01; }
            this.weight[j] = resp / i2d(n);
            this.mean[j] = mu;
            this.variance[j] = var_;
            j = j + 1;
        }
        return merged[k * 3];           // log-likelihood of this pass
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new GaussMix(n, 3);
        }
        var gm = cast(GaussMix, Bench.cached);
        var pool = new ThreadPool(4);
        var ll = 0.0;
        var round = 0;
        while (round < 5) {
            ll = gm.iterate(pool, 8);
            round = round + 1;
        }
        pool.shutdown();
        return d2i(ll * 1000.0);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="gauss-mix",
    suite="renaissance",
    source=SOURCE,
    description="Gaussian mixture model fit by data-parallel EM",
    focus="data-parallel, machine learning",
    args=(2000,),
    warmup=5,
    measure=4,
)
