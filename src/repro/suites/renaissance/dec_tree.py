"""dec-tree: decision-tree classification training (Table 1).

Focus: data-parallel, machine learning.  Split evaluation scans feature
columns with bounds-checked loops (GM-sensitive, as the paper's ≈8%
impact row shows) and fans candidate splits out over the pool.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class DecTree {
    var features;     // rows x dims
    var labels;
    var rows;
    var dims;

    def init(rows, dims) {
        this.rows = rows;
        this.dims = dims;
        this.features = new double[rows * dims];
        this.labels = new int[rows];
        var r = new Random(555);
        var i = 0;
        while (i < rows * dims) {
            this.features[i] = r.nextDouble();
            i = i + 1;
        }
        i = 0;
        while (i < rows) {
            var x = this.features[i * dims];
            if (x > 0.5) { this.labels[i] = 1; } else { this.labels[i] = 0; }
            i = i + 1;
        }
    }

    // Gini impurity of splitting dimension `dim` at `threshold`.
    def splitScore(dim, threshold) {
        var f = this.features;
        var lab = this.labels;
        var d = this.dims;
        var n = this.rows;
        var leftPos = 0;
        var leftTotal = 0;
        var rightPos = 0;
        var rightTotal = 0;
        var i = 0;
        while (i < n) {
            var x = f[i * d + dim];
            if (x < threshold) {
                leftTotal = leftTotal + 1;
                leftPos = leftPos + lab[i];
            } else {
                rightTotal = rightTotal + 1;
                rightPos = rightPos + lab[i];
            }
            i = i + 1;
        }
        var score = 0.0;
        if (leftTotal > 0) {
            var p = i2d(leftPos) / i2d(leftTotal);
            score = score + i2d(leftTotal) * p * (1.0 - p);
        }
        if (rightTotal > 0) {
            var p = i2d(rightPos) / i2d(rightTotal);
            score = score + i2d(rightTotal) * p * (1.0 - p);
        }
        return score;
    }

    def bestSplit(pool) {
        var self = this;
        var futures = new ArrayList();
        var dim = 0;
        while (dim < this.dims) {
            var dd = dim;
            futures.add(pool.submit(fun () {
                var best = 1.0e18;
                var t = 1;
                while (t < 8) {
                    var s = self.splitScore(dd, i2d(t) / 8.0);
                    if (s < best) { best = s; }
                    t = t + 1;
                }
                return best;
            }));
            dim = dim + 1;
        }
        var best = 1.0e18;
        var i = 0;
        while (i < futures.size()) {
            var f = cast(Promise, futures.get(i));
            var s = f.get();
            if (s < best) { best = s; }
            i = i + 1;
        }
        return best;
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new DecTree(n, 6);
        }
        var tree = cast(DecTree, Bench.cached);
        var pool = new ThreadPool(4);
        var acc = 0.0;
        var round = 0;
        while (round < 3) {
            acc = acc + tree.bestSplit(pool);
            round = round + 1;
        }
        pool.shutdown();
        return d2i(acc * 1000.0);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="dec-tree",
    suite="renaissance",
    source=SOURCE,
    description="Decision-tree split search: parallel Gini scans over "
                "feature columns",
    focus="data-parallel, machine learning",
    args=(160,),
    warmup=5,
    measure=4,
)
