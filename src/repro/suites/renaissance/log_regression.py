"""log-regression: logistic regression over a dense dataset (Table 1).

Focus: data-parallel, machine learning.  The gradient loops index
feature arrays with induction variables, so each access carries null +
bounds guards — Section 5.5's Speculative Guard Motion (GM) headline
(paper: ≈15% impact; the guard-count table of Section 5.5 is
regenerated from this workload by the analysis driver).
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class LogRegression {
    var features;     // rows * dims, dense
    var labels;       // 0/1 per row
    var weights;
    var rows;
    var dims;

    def init(rows, dims) {
        this.rows = rows;
        this.dims = dims;
        this.features = new double[rows * dims];
        this.labels = new int[rows];
        this.weights = new double[dims];
        var r = new Random(31);
        var i = 0;
        while (i < rows * dims) {
            this.features[i] = r.nextDouble() * 2.0 - 1.0;
            i = i + 1;
        }
        i = 0;
        while (i < rows) {
            this.labels[i] = r.nextInt(2);
            i = i + 1;
        }
    }

    def dot(row) {
        var acc = 0.0;
        var base = row * this.dims;
        var f = this.features;
        var w = this.weights;
        var d = this.dims;
        var j = 0;
        while (j < d) {
            acc = acc + f[base + j] * w[j];
            j = j + 1;
        }
        return acc;
    }

    def gradientChunk(lo, hi, grad) {
        var f = this.features;
        var d = this.dims;
        var i = lo;
        while (i < hi) {
            var margin = this.dot(i);
            var p = 1.0 / (1.0 + Math.exp(0.0 - margin));
            var err = p - i2d(this.labels[i]);
            var base = i * d;
            var j = 0;
            while (j < d) {
                grad[j] = grad[j] + err * f[base + j];
                j = j + 1;
            }
            i = i + 1;
        }
        return hi - lo;
    }

    def step(pool, tasks, rate) {
        var self = this;
        var grads = new ref[tasks];
        var latch = new CountDownLatch(tasks);
        var per = (this.rows + tasks - 1) / tasks;
        var t = 0;
        while (t < tasks) {
            var lo = t * per;
            var hi = lo + per;
            if (hi > this.rows) { hi = this.rows; }
            var g = new double[this.dims];
            grads[t] = g;
            pool.execute(fun () {
                self.gradientChunk(lo, hi, g);
                latch.countDown();
            });
            t = t + 1;
        }
        latch.await();
        var j = 0;
        while (j < this.dims) {
            var sum = 0.0;
            t = 0;
            while (t < tasks) {
                var g = grads[t];
                sum = sum + g[j];
                t = t + 1;
            }
            this.weights[j] = this.weights[j] - rate * sum / i2d(this.rows);
            j = j + 1;
        }
        return this.weights[0];
    }
}

class Bench {
    static def run(n) {
        var model = new LogRegression(n, 12);
        var pool = new ThreadPool(4);
        var w0 = 0.0;
        var epoch = 0;
        while (epoch < 3) {
            w0 = model.step(pool, 4, 0.5);
            epoch = epoch + 1;
        }
        pool.shutdown();
        return d2i(w0 * 1000000.0);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="log-regression",
    suite="renaissance",
    source=SOURCE,
    description="Parallel logistic-regression gradient descent over "
                "dense double arrays",
    focus="data-parallel, machine learning",
    args=(120,),
    warmup=6,
    measure=4,
)
