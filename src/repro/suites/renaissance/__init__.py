"""The 24 Renaissance benchmarks (paper Table 1), one module each."""

from importlib import import_module

_MODULES = (
    "akka_uct", "als", "chi_square", "db_shootout", "dec_tree", "dotty",
    "finagle_chirper", "finagle_http", "fj_kmeans", "future_genetic",
    "gauss_mix", "log_regression", "movie_lens", "naive_bayes",
    "neo4j_analytics", "page_rank", "par_mnemonics", "philosophers",
    "reactors", "rx_scrabble", "scala_kmeans", "scrabble", "stm_bench7",
    "streams_mnemonics",
)


def benchmarks():
    """All Renaissance GuestBenchmark definitions, Table 1 order."""
    out = []
    for name in _MODULES:
        module = import_module(f"repro.suites.renaissance.{name}")
        out.append(module.BENCHMARK)
    return out
