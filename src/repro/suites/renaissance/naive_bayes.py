"""naive-bayes: multinomial naive Bayes training (Table 1).

Focus: data-parallel, machine learning.  Per-class feature counting
fans out over the pool; the log-likelihood pass is double math over the
count tables — high CPU utilization and allocation like the paper's
Spark ML original.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class NaiveBayes {
    var docs;         // n x dims term counts
    var labels;
    var n;
    var dims;
    var classes;

    def init(n, dims, classes) {
        this.n = n;
        this.dims = dims;
        this.classes = classes;
        this.docs = new int[n * dims];
        this.labels = new int[n];
        var r = new Random(808);
        var i = 0;
        while (i < n) {
            var cls = r.nextInt(classes);
            this.labels[i] = cls;
            var j = 0;
            while (j < dims) {
                if ((j + cls) % 3 == 0) {
                    this.docs[i * dims + j] = r.nextInt(4);
                }
                j = j + 1;
            }
            i = i + 1;
        }
    }

    def countChunk(lo, hi, counts) {
        var d = this.dims;
        var i = lo;
        while (i < hi) {
            var cls = this.labels[i];
            var base = cls * d;
            var j = 0;
            while (j < d) {
                counts[base + j] = counts[base + j] + this.docs[i * d + j];
                j = j + 1;
            }
            i = i + 1;
        }
        return hi - lo;
    }

    def train(pool, chunks) {
        var self = this;
        var partials = new ref[chunks];
        var latch = new CountDownLatch(chunks);
        var per = (this.n + chunks - 1) / chunks;
        var c = 0;
        while (c < chunks) {
            var lo = c * per;
            var hi = lo + per;
            if (hi > this.n) { hi = this.n; }
            var counts = new int[this.classes * this.dims];
            partials[c] = counts;
            pool.execute(fun () {
                self.countChunk(lo, hi, counts);
                latch.countDown();
            });
            c = c + 1;
        }
        latch.await();
        // Merge and compute smoothed log-likelihood checksum.
        var cells = this.classes * this.dims;
        var merged = new int[cells];
        c = 0;
        while (c < chunks) {
            var counts = partials[c];
            var i = 0;
            while (i < cells) {
                merged[i] = merged[i] + counts[i];
                i = i + 1;
            }
            c = c + 1;
        }
        var acc = 0.0;
        var i = 0;
        while (i < cells) {
            acc = acc + Math.log(i2d(merged[i] + 1));
            i = i + 1;
        }
        return acc;
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new NaiveBayes(n, 20, 4);
        }
        var nb = cast(NaiveBayes, Bench.cached);
        var pool = new ThreadPool(4);
        var acc = 0.0;
        var round = 0;
        while (round < 3) {
            acc = acc + nb.train(pool, 8);
            round = round + 1;
        }
        pool.shutdown();
        return d2i(acc * 100.0);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="naive-bayes",
    suite="renaissance",
    source=SOURCE,
    description="Parallel multinomial naive Bayes count aggregation and "
                "log-likelihood pass",
    focus="data-parallel, machine learning",
    args=(120,),
    warmup=5,
    measure=4,
)
