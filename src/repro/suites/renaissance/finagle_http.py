"""finagle-http: high server load over the loopback stack (Table 1).

Focus: network stack, message-passing.  Client threads push request
strings through a bounded queue to server workers that parse, route and
respond through per-client response queues — the single-process loopback
encoding the paper describes for its network benchmarks.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class HttpRequest {
    var path;
    var client;
    var seq;

    def init(path, client, seq) {
        this.path = path;
        this.client = client;
        this.seq = seq;
    }
}

class HttpServer {
    var requests;     // BlockingQueue of HttpRequest
    var responses;    // ref array of per-client BlockingQueues
    var served;       // AtomicLong

    def init(clients) {
        this.requests = new BlockingQueue(256);
        this.responses = new ref[clients];
        this.served = new AtomicLong(0);
        var i = 0;
        while (i < clients) {
            this.responses[i] = new BlockingQueue(64);
            i = i + 1;
        }
    }

    def route(path) {
        // "Routing": hash the path segments.
        var h = 7;
        var n = Str.len(path);
        var i = 0;
        while (i < n) {
            h = (h * 31 + Str.charAt(path, i)) % 1000003;
            i = i + 1;
        }
        return h;
    }

    def serverLoop() {
        while (true) {
            var req = this.requests.take();
            if (req instanceof PoisonPill) {
                break;
            }
            var r = cast(HttpRequest, req);
            var status = this.route(r.path);
            this.served.incrementAndGet();
            var out = cast(BlockingQueue, this.responses[r.client]);
            out.put("200:" + status + ":" + r.seq);
        }
        return 0;
    }
}

class Bench {
    static def run(n) {
        var clients = 3;
        var server = new HttpServer(clients);
        var s = 0;
        var servers = new ref[2];
        while (s < 2) {
            var t = new Thread(fun () { server.serverLoop(); });
            t.daemon = true;
            t.start();
            servers[s] = t;
            s = s + 1;
        }
        var latch = new CountDownLatch(clients);
        var checks = new AtomicLong(0);
        var c = 0;
        while (c < clients) {
            var cid = c;
            var t = new Thread(fun () {
                var inbox = cast(BlockingQueue, server.responses[cid]);
                var acc = 0;
                var i = 0;
                while (i < n) {
                    server.requests.put(
                        new HttpRequest("/api/user/" + (i % 10), cid, i));
                    var resp = inbox.take();
                    acc = (acc + Str.len(resp)) % 1000003;
                    i = i + 1;
                }
                checks.getAndAdd(acc);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            c = c + 1;
        }
        latch.await();
        s = 0;
        while (s < 2) {
            server.requests.put(new PoisonPill());
            s = s + 1;
        }
        s = 0;
        while (s < 2) {
            var t = cast(Thread, servers[s]);
            t.join();
            s = s + 1;
        }
        return server.served.get() * 1000 + checks.get() % 1000;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="finagle-http",
    suite="renaissance",
    source=SOURCE,
    description="Request/response over loopback queues: clients, two "
                "server workers, per-client response channels",
    focus="network stack, message-passing",
    args=(60,),
    warmup=5,
    measure=4,
    deterministic=False,
)
