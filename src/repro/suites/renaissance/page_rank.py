"""page-rank: PageRank with Spark-style data parallelism (Table 1).

Focus: data-parallel, atomics.  Rank contributions are scattered into
shared accumulators with atomic adds from pool tasks, then the damping
pass rebuilds the rank vector — the contribution-shuffle of the Spark
original, with the atomic-heavy profile Figure 2 shows.
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class PageRank {
    var outlinks;     // ref array of int[] outlink lists
    var ranks;        // double per node
    var accum;        // ref array of AtomicLong (scaled contributions)
    var nodes;

    def init(nodes, degree) {
        this.nodes = nodes;
        this.outlinks = new ref[nodes];
        this.ranks = new double[nodes];
        this.accum = new ref[nodes];
        var r = new Random(313);
        var i = 0;
        while (i < nodes) {
            var links = new int[degree];
            var j = 0;
            while (j < degree) {
                links[j] = (i + 1 + r.nextInt(nodes)) % nodes;
                j = j + 1;
            }
            this.outlinks[i] = links;
            this.ranks[i] = 1.0;
            this.accum[i] = new AtomicLong(0);
            i = i + 1;
        }
    }

    def scatterChunk(lo, hi) {
        var i = lo;
        while (i < hi) {
            var links = this.outlinks[i];
            var d = len(links);
            var share = d2i(this.ranks[i] * 1000000.0) / d;
            var j = 0;
            while (j < d) {
                var cell = cast(AtomicLong, this.accum[links[j]]);
                cell.getAndAdd(share);
                j = j + 1;
            }
            i = i + 1;
        }
        return hi - lo;
    }

    def iteration(pool, chunks) {
        var self = this;
        var latch = new CountDownLatch(chunks);
        var per = (this.nodes + chunks - 1) / chunks;
        var c = 0;
        while (c < chunks) {
            var lo = c * per;
            var hi = lo + per;
            if (hi > this.nodes) { hi = this.nodes; }
            pool.execute(fun () {
                self.scatterChunk(lo, hi);
                latch.countDown();
            });
            c = c + 1;
        }
        latch.await();
        // Gather with damping.
        var acc = 0.0;
        var i = 0;
        while (i < this.nodes) {
            var cell = cast(AtomicLong, this.accum[i]);
            var contrib = i2d(cell.get()) / 1000000.0;
            cell.set(0);
            this.ranks[i] = 0.15 + 0.85 * contrib;
            acc = acc + this.ranks[i];
            i = i + 1;
        }
        return acc;
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new PageRank(n, 4);
        }
        var pr = cast(PageRank, Bench.cached);
        // Reset rank state: iterations must be idempotent.
        var i = 0;
        while (i < pr.nodes) {
            pr.ranks[i] = 1.0;
            var cell = cast(AtomicLong, pr.accum[i]);
            cell.set(0);
            i = i + 1;
        }
        var pool = new ThreadPool(4);
        var acc = 0.0;
        var round = 0;
        while (round < 4) {
            acc = pr.iteration(pool, 8);
            round = round + 1;
        }
        pool.shutdown();
        return d2i(acc * 1000.0);
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="page-rank",
    suite="renaissance",
    source=SOURCE,
    description="PageRank: atomic contribution scatter plus damping "
                "gather per superstep",
    focus="data-parallel, atomics",
    args=(220,),
    warmup=5,
    measure=4,
)
