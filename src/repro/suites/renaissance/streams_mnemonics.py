"""streams-mnemonics: phone-number mnemonics with streams (Table 1).

Focus: data-parallel, memory-bound.  Candidate encodings are modelled as
a small class hierarchy; the classification pass re-tests ``instanceof``
on the same value after merges — Section 5.7's repeated-check pattern,
the Dominance-Based Duplication Simulation (DS) headline (paper: ≈22%
impact), with stream pipelines on top (some MHS/DS interplay, as in the
paper's Figure 5 row).
"""

from repro.harness.core import GuestBenchmark

SOURCE = r"""
class Token { def init() { } }
class WordToken extends Token {
    var word;        // letter-code array
    def init(word) { this.word = word; }
}
class DigitToken extends Token {
    var digit;
    def init(digit) { this.digit = digit; }
}

class Mnemonics {
    var tokens;       // ArrayList of Token
    var acc;

    def init(n) {
        this.acc = 0;
        this.tokens = new ArrayList();
        var words = "maptreecodejavarunsfastheapnodelistcallsite";
        var r = new Random(17);
        var i = 0;
        while (i < n) {
            if (r.nextInt(3) == 0) {
                this.tokens.add(new DigitToken(r.nextInt(10)));
            } else {
                var a = (r.nextInt(38)) % 38;
                var w = new int[4];
                var j = 0;
                while (j < 4) {
                    w[j] = Str.charAt(words, a + j) - 'a';
                    j = j + 1;
                }
                this.tokens.add(new WordToken(w));
            }
            i = i + 1;
        }
    }

    def wordValue(w) {
        // digit for each letter, phone-keypad style.
        var total = 0;
        var i = 0;
        var n = len(w);
        while (i < n) {
            var c = w[i];
            total = total * 10 + (c / 3 + 2) % 10;
            i = i + 1;
        }
        return total;
    }

    // The DS pattern: the same instanceof re-tested after merges.
    def classify(t) {
        if (t instanceof WordToken) {
            this.acc = this.acc + 1;
        } else {
            this.acc = this.acc + 2;
        }
        if (t instanceof WordToken) {
            var w = cast(WordToken, t);
            this.acc = this.acc + this.wordValue(w.word) % 97;
        }
        if (t instanceof WordToken) {
            this.acc = this.acc + 3;
        } else {
            var d = cast(DigitToken, t);
            this.acc = this.acc + d.digit;
        }
        if (t instanceof WordToken) {
            this.acc = this.acc + 7;
        }
        if (t instanceof WordToken) {
            this.acc = this.acc - 2;
        } else {
            this.acc = this.acc + 5;
        }
        return this.acc;
    }

    def encodeAll() {
        var self = this;
        var i = 0;
        var last = 0;
        while (i < this.tokens.size()) {
            last = self.classify(this.tokens.get(i));
            i = i + 1;
        }
        return last;
    }

    def streamPass() {
        var self = this;
        return Stream.of(this.tokens)
            .filter(fun (t) t instanceof WordToken)
            .map(fun (t) self.wordValue(cast(WordToken, t).word))
            .reduce(0, fun (a, b) (a + b) % 1000003);
    }
}

class Bench {
    static var cached = null;

    static def run(n) {
        if (Bench.cached == null) {
            Bench.cached = new Mnemonics(n);
        }
        var m = cast(Mnemonics, Bench.cached);
        m.acc = 0;
        var acc = 0;
        var round = 0;
        while (round < 10) {
            acc = (acc + m.encodeAll()) % 1000000007;
            if (round == 0) {
                acc = (acc + m.streamPass()) % 1000000007;
            }
            round = round + 1;
        }
        return acc;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="streams-mnemonics",
    suite="renaissance",
    source=SOURCE,
    description="Phone mnemonics: token classification with repeated "
                "instanceof checks plus stream pipelines",
    focus="data-parallel, memory-bound",
    args=(300,),
    warmup=6,
    measure=4,
)
