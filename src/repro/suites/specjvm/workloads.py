"""The 21 SPECjvm2008-like benchmark definitions."""

from repro.harness.core import GuestBenchmark

# Shared driver: every SPECjvm operation runs on 4 independent threads
# with no shared mutable state (the SPECjvm harness keeps all cores
# busy), summing per-thread checksums through one atomic at the end.
_DRIVER = r"""
class Bench {
    static def run(n) {
        var latch = new CountDownLatch(4);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 4) {
            var wid = w;
            var t = new Thread(fun () {
                total.getAndAdd(Kernel.operate(n, wid) % 1000003);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            w = w + 1;
        }
        latch.await();
        return total.get();
    }
}
"""

_FFT = r"""
class Kernel {
    // Iterative radix-2 FFT (scimark.fft): bit-reversal + butterflies.
    static def operate(n, wid) {
        var re = new double[n];
        var im = new double[n];
        var r = new PlainRandom(wid + 42);
        var i = 0;
        while (i < n) {
            re[i] = r.nextDouble();
            im[i] = 0.0;
            i = i + 1;
        }
        // Bit reversal permutation.
        var j = 0;
        i = 0;
        while (i < n - 1) {
            if (i < j) {
                var tr = re[i]; re[i] = re[j]; re[j] = tr;
                var ti = im[i]; im[i] = im[j]; im[j] = ti;
            }
            var k = n / 2;
            while (k <= j) {
                j = j - k;
                k = k / 2;
            }
            j = j + k;
            i = i + 1;
        }
        // Butterflies.
        var len = 2;
        while (len <= n) {
            var ang = 6.283185307179586 / i2d(len);
            var wr = Math.cos(ang);
            var wi = Math.sin(ang);
            var base = 0;
            while (base < n) {
                var cr = 1.0;
                var ci = 0.0;
                var off = 0;
                while (off < len / 2) {
                    var p = base + off;
                    var q = p + len / 2;
                    var xr = re[q] * cr - im[q] * ci;
                    var xi = re[q] * ci + im[q] * cr;
                    re[q] = re[p] - xr;
                    im[q] = im[p] - xi;
                    re[p] = re[p] + xr;
                    im[p] = im[p] + xi;
                    var ncr = cr * wr - ci * wi;
                    ci = cr * wi + ci * wr;
                    cr = ncr;
                    off = off + 1;
                }
                base = base + len;
            }
            len = len * 2;
        }
        return d2i((re[0] + im[n / 2]) * 1000.0);
    }
}
"""

_LU = r"""
class Kernel {
    // In-place LU factorization (scimark.lu): the triple loop whose
    // bounds checks make GM the dominant optimization (Table 15).
    static def operate(n, wid) {
        var a = new double[n * n];
        var r = new PlainRandom(wid * 7 + 5);
        var i = 0;
        while (i < n * n) {
            a[i] = r.nextDouble() + 0.001;
            i = i + 1;
        }
        i = 0;
        while (i < n) {
            a[i * n + i] = a[i * n + i] + i2d(n);   // diagonal dominance
            i = i + 1;
        }
        var k = 0;
        while (k < n) {
            var pivot = a[k * n + k];
            var row = k + 1;
            while (row < n) {
                var factor = a[row * n + k] / pivot;
                a[row * n + k] = factor;
                var col = k + 1;
                while (col < n) {
                    a[row * n + col] = a[row * n + col]
                                     - factor * a[k * n + col];
                    col = col + 1;
                }
                row = row + 1;
            }
            k = k + 1;
        }
        var trace = 0.0;
        i = 0;
        while (i < n) {
            trace = trace + a[i * n + i];
            i = i + 1;
        }
        return d2i(trace * 100.0);
    }
}
"""

_SOR = r"""
class Kernel {
    // Successive over-relaxation stencil (scimark.sor).
    static def operate(n, wid) {
        var g = new double[n * n];
        var r = new PlainRandom(wid + 9);
        var i = 0;
        while (i < n * n) {
            g[i] = r.nextDouble();
            i = i + 1;
        }
        var sweep = 0;
        while (sweep < 4) {
            var row = 1;
            while (row < n - 1) {
                var base = row * n;
                var col = 1;
                while (col < n - 1) {
                    g[base + col] = 0.3125 * (g[base - n + col]
                        + g[base + n + col] + g[base + col - 1]
                        + g[base + col + 1]) - 0.25 * g[base + col];
                    col = col + 1;
                }
                row = row + 1;
            }
            sweep = sweep + 1;
        }
        return d2i(g[n + 1] * 100000.0);
    }
}
"""

_SPARSE = r"""
class Kernel {
    // Sparse matrix-vector multiply, CRS layout (scimark.sparse).
    static def operate(n, wid) {
        var nz = n * 4;
        var values = new double[nz];
        var cols = new int[nz];
        var rowptr = new int[n + 1];
        var x = new double[n];
        var y = new double[n];
        var r = new PlainRandom(wid + 31);
        var i = 0;
        while (i < n) {
            x[i] = r.nextDouble();
            rowptr[i] = i * 4;
            i = i + 1;
        }
        rowptr[n] = nz;
        i = 0;
        while (i < nz) {
            values[i] = r.nextDouble();
            cols[i] = r.nextInt(n);
            i = i + 1;
        }
        var pass = 0;
        while (pass < 6) {
            var row = 0;
            while (row < n) {
                var acc = 0.0;
                var idx = rowptr[row];
                var last = rowptr[row + 1];
                while (idx < last) {
                    acc = acc + values[idx] * x[cols[idx]];
                    idx = idx + 1;
                }
                y[row] = acc;
                row = row + 1;
            }
            pass = pass + 1;
        }
        return d2i(y[0] * 100000.0 + y[n - 1] * 1000.0);
    }
}
"""

_MONTE_CARLO = r"""
class Kernel {
    // Monte-Carlo pi (scimark.monte_carlo): tight RNG loop.
    static def operate(n, wid) {
        var r = new PlainRandom(wid * 13 + 3);
        var hits = 0;
        var i = 0;
        while (i < n) {
            var x = r.nextDouble();
            var y = r.nextDouble();
            if (x * x + y * y <= 1.0) {
                hits = hits + 1;
            }
            i = i + 1;
        }
        return hits * 4000 / n;
    }
}
"""

_COMPRESS = r"""
class Kernel {
    // LZW-flavoured byte compression over int arrays (compress).
    static def operate(n, wid) {
        var data = new int[n];
        var r = new PlainRandom(wid + 77);
        var i = 0;
        while (i < n) {
            data[i] = r.nextInt(64);
            i = i + 1;
        }
        var table = new int[4096];
        var out = 0;
        var prev = 0;
        i = 0;
        while (i < n) {
            var sym = data[i];
            var code = ((prev << 6) ^ sym) & 4095;
            if (table[code] == 0) {
                table[code] = code + 1;
                out = out + 1;
            }
            prev = (prev + sym) & 63;
            i = i + 1;
        }
        return out * 1000 + prev;
    }
}
"""

_AES = r"""
class Kernel {
    // Round-based block mixing (crypto.aes): xor/shift/sbox loops.
    static def operate(n, wid) {
        var sbox = new int[256];
        var i = 0;
        while (i < 256) {
            sbox[i] = (i * 167 + 13) & 255;
            i = i + 1;
        }
        var state = new int[16];
        i = 0;
        while (i < 16) {
            state[i] = (wid * 31 + i * 7) & 255;
            i = i + 1;
        }
        var block = 0;
        var check = 0;
        while (block < n) {
            var round = 0;
            while (round < 10) {
                i = 0;
                while (i < 16) {
                    state[i] = sbox[state[i]] ^ ((round * 17 + i) & 255);
                    i = i + 1;
                }
                i = 0;
                while (i < 16) {
                    state[i] = (state[i] + state[(i + 5) % 16]) & 255;
                    i = i + 1;
                }
                round = round + 1;
            }
            check = (check + state[0]) & 65535;
            block = block + 1;
        }
        return check;
    }
}
"""

_RSA = r"""
class Kernel {
    // Modular exponentiation, square-and-multiply (crypto.rsa).
    static def operate(n, wid) {
        var modulus = 1000000007;
        var acc = 0;
        var msg = 0;
        while (msg < n) {
            var base = (msg * 31 + wid * 7 + 12345) % modulus;
            var exp = 65537;
            var result = 1;
            var b = base;
            while (exp > 0) {
                if ((exp & 1) == 1) {
                    result = (result * b) % modulus;
                }
                b = (b * b) % modulus;
                exp = exp >> 1;
            }
            acc = (acc + result) % modulus;
            msg = msg + 1;
        }
        return acc;
    }
}
"""

_SIGNVERIFY = r"""
class Kernel {
    // Hash-sign-verify cycles (crypto.signverify).
    static def operate(n, wid) {
        var ok = 0;
        var doc = 0;
        while (doc < n) {
            var h = 7 + wid;
            var i = 0;
            while (i < 64) {
                h = (h * 31 + ((doc * 64 + i) ^ (h >> 7))) % 1000003;
                i = i + 1;
            }
            var sig = (h * 65537 + 99991) % 1000003;
            var check = (h * 65537 + 99991) % 1000003;
            if (sig == check) {
                ok = ok + 1;
            }
            doc = doc + 1;
        }
        return ok;
    }
}
"""

_MPEGAUDIO = r"""
class Kernel {
    // Polyphase FIR filtering (mpegaudio).
    static def operate(n, wid) {
        var signal = new double[n];
        var coeff = new double[32];
        var r = new PlainRandom(wid + 21);
        var i = 0;
        while (i < n) {
            signal[i] = r.nextDouble() - 0.5;
            i = i + 1;
        }
        i = 0;
        while (i < 32) {
            coeff[i] = Math.sin(i2d(i) * 0.196);
            i = i + 1;
        }
        var energy = 0.0;
        i = 32;
        while (i < n) {
            var acc = 0.0;
            var t = 0;
            while (t < 32) {
                acc = acc + signal[i - t] * coeff[t];
                t = t + 1;
            }
            energy = energy + acc * acc;
            i = i + 1;
        }
        return d2i(energy * 1000.0);
    }
}
"""

_DERBY = r"""
class Kernel {
    // Fixed-point decimal aggregation with grouping (derby).
    static def operate(n, wid) {
        var groups = new HashMap();
        var row = 0;
        while (row < n) {
            var account = (row * 7 + wid) % 16;
            var cents = (row * 3741 + wid * 17) % 100000;
            var prev = groups.get(account);
            if (prev == null) {
                groups.put(account, cents);
            } else {
                groups.put(account, (prev + cents) % 1000000007);
            }
            row = row + 1;
        }
        var keys = groups.keys();
        var acc = 0;
        var i = 0;
        while (i < keys.size()) {
            acc = (acc + groups.get(keys.get(i))) % 1000000007;
            i = i + 1;
        }
        return acc;
    }
}
"""

_SERIAL = r"""
class Kernel {
    // Record serialization round-trip over strings (serial).
    static def operate(n, wid) {
        var acc = 0;
        var rec = 0;
        while (rec < n) {
            var text = "id=" + (rec + wid) + ";qty=" + (rec % 97)
                     + ";px=" + (rec * 13 % 1000);
            var fields = Text.split(text, ';');
            var f = 0;
            while (f < fields.size()) {
                var field = fields.get(f);
                var eq = Str.indexOf(field, "=");
                var value = Str.parseInt(
                    Str.sub(field, eq + 1, Str.len(field)));
                acc = (acc + value) % 1000003;
                f = f + 1;
            }
            rec = rec + 1;
        }
        return acc;
    }
}
"""

_SUNFLOW_SPEC = r"""
class Kernel {
    // Ray-sphere intersection batches (sunflow).
    static def operate(n, wid) {
        var r = new PlainRandom(wid + 11);
        var hits = 0;
        var depth = 0.0;
        var ray = 0;
        while (ray < n) {
            var ox = r.nextDouble() * 2.0 - 1.0;
            var oy = r.nextDouble() * 2.0 - 1.0;
            var dx = 0.1;
            var dy = 0.1;
            var dz = 1.0;
            var b = ox * dx + oy * dy - dz * 2.0;
            var c = ox * ox + oy * oy + 4.0 - 1.0;
            var disc = b * b - c;
            if (disc > 0.0) {
                hits = hits + 1;
                depth = depth + (0.0 - b) - Math.sqrt(disc);
            }
            ray = ray + 1;
        }
        return hits * 1000 + d2i(depth) % 1000;
    }
}
"""

_XML_TRANSFORM = r"""
class Kernel {
    // Tag rewriting over markup text (xml.transform).
    static def operate(n, wid) {
        var doc = "";
        var i = 0;
        while (i < 12) {
            doc = doc + "<item id='" + i + "'><name>n" + i
                + "</name><qty>" + (i * 3 % 7) + "</qty></item>";
            i = i + 1;
        }
        var acc = 0;
        var pass = 0;
        while (pass < n) {
            var out = 0;
            var m = Str.len(doc);
            var j = 0;
            while (j < m) {
                var ch = Str.charAt(doc, j);
                if (ch == '<') {
                    out = out + 1;
                }
                acc = (acc * 31 + ch) % 1000003;
                j = j + 1;
            }
            acc = (acc + out) % 1000003;
            pass = pass + 1;
        }
        return acc;
    }
}
"""

_XML_VALIDATION = r"""
class Kernel {
    // Well-formedness checking: tag stack matching (xml.validation).
    static def operate(n, wid) {
        var doc = "";
        var i = 0;
        while (i < 10) {
            doc = doc + "<a><b><c>x</c><d>y</d></b></a>";
            i = i + 1;
        }
        var valid = 0;
        var pass = 0;
        while (pass < n) {
            var depth = 0;
            var maxDepth = 0;
            var m = Str.len(doc);
            var j = 0;
            while (j < m) {
                var ch = Str.charAt(doc, j);
                if (ch == '<') {
                    if (Str.charAt(doc, j + 1) == '/') {
                        depth = depth - 1;
                    } else {
                        depth = depth + 1;
                        if (depth > maxDepth) {
                            maxDepth = depth;
                        }
                    }
                }
                j = j + 1;
            }
            if (depth == 0) {
                valid = valid + 1;
            }
            pass = pass + maxDepth - 2;
        }
        return valid;
    }
}
"""

_COMPILER = r"""
class ExprN { def init() { } }
class NumN extends ExprN {
    var value;
    def init(value) { this.value = value; }
}
class BinN extends ExprN {
    var op;
    var lhs;
    var rhs;
    def init(op, lhs, rhs) { this.op = op; this.lhs = lhs; this.rhs = rhs; }
}

class Kernel {
    static def parse(seed, depth) {
        if (depth == 0) {
            return new NumN(seed % 13);
        }
        return new BinN(seed % 3,
                        Kernel.parse(seed * 3 + 1, depth - 1),
                        Kernel.parse(seed * 5 + 2, depth - 1));
    }

    static def eval(node) {
        if (node instanceof NumN) {
            return cast(NumN, node).value;
        }
        var b = cast(BinN, node);
        var l = Kernel.eval(b.lhs);
        var r = Kernel.eval(b.rhs);
        if (b.op == 0) { return (l + r) % 1000003; }
        if (b.op == 1) { return (l * r + 1) % 1000003; }
        return (l - r + 1000003) % 1000003;
    }

    static def operate(n, wid) {
        var acc = 0;
        var unit = 0;
        while (unit < n) {
            var tree = Kernel.parse(unit * 7 + wid, 5);
            acc = (acc + Kernel.eval(tree)) % 1000003;
            unit = unit + 1;
        }
        return acc;
    }
}
"""


def _bench(name: str, kernel: str, arg: int, description: str) -> GuestBenchmark:
    return GuestBenchmark(
        name=name,
        suite="specjvm",
        source=kernel + _DRIVER,
        description=description,
        focus="compute-bound",
        args=(arg,),
        warmup=4,
        measure=4,
    )


def benchmarks() -> list[GuestBenchmark]:
    return [
        _bench("compiler.compiler", _COMPILER, 24,
               "javac-style parse+eval over expression trees"),
        _bench("compiler.sunflow", _COMPILER, 36,
               "javac compiling the sunflow sources (larger units)"),
        _bench("compress", _COMPRESS, 3000, "LZW-style compression loop"),
        _bench("crypto.aes", _AES, 40, "AES-like round mixing"),
        _bench("crypto.rsa", _RSA, 40, "modular exponentiation"),
        _bench("crypto.signverify", _SIGNVERIFY, 140,
               "hash-sign-verify cycles"),
        _bench("derby", _DERBY, 900, "decimal aggregation with grouping"),
        _bench("mpegaudio", _MPEGAUDIO, 400, "polyphase FIR filtering"),
        _bench("scimark.fft.large", _FFT, 256, "radix-2 FFT, large input"),
        _bench("scimark.fft.small", _FFT, 128, "radix-2 FFT, small input"),
        _bench("scimark.lu.large", _LU, 26, "LU factorization, large"),
        _bench("scimark.lu.small", _LU, 14, "LU factorization, small"),
        _bench("scimark.monte_carlo", _MONTE_CARLO, 1500,
               "Monte-Carlo pi estimation"),
        _bench("scimark.sor.large", _SOR, 28, "SOR stencil, large grid"),
        _bench("scimark.sor.small", _SOR, 18, "SOR stencil, small grid"),
        _bench("scimark.sparse.large", _SPARSE, 240,
               "sparse mat-vec, large"),
        _bench("scimark.sparse.small", _SPARSE, 120,
               "sparse mat-vec, small"),
        _bench("serial", _SERIAL, 120, "record serialization round-trip"),
        _bench("sunflow", _SUNFLOW_SPEC, 1800, "ray-sphere batches"),
        _bench("xml.transform", _XML_TRANSFORM, 10, "tag rewriting"),
        _bench("xml.validation", _XML_VALIDATION, 14,
               "well-formedness checking"),
    ]
