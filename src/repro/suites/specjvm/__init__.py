"""SPECjvm2008-like workloads (paper Table 6, 21 benchmarks).

SPECjvm2008's published profile (paper Table 7): compute-bound numeric
kernels, very high CPU utilization (the harness keeps every core busy
with independent operations), near-zero concurrency-primitive usage,
and small code footprints (Figure 7).  The reproductions follow that
recipe: each benchmark runs its kernel on several independent threads
with no shared mutable state, using the non-atomic :class:`PlainRandom`.

The scimark kernels are real implementations of FFT, LU factorization,
successive over-relaxation, sparse mat-vec and Monte-Carlo π — the
loop shapes that make speculative guard motion dominate Table 15
(lu.small: +137%).
"""

from repro.suites.specjvm.workloads import benchmarks
