"""DaCapo-like workloads (paper Table 6, 14 benchmarks).

DaCapo's published profile (paper Table 7): complex object-oriented
Java applications — high allocation and dynamic-dispatch rates, low CPU
utilization (mostly one or two active threads), and almost no use of
the modern concurrency primitives (no invokedynamic: the suite predates
JDK 7).  The reproductions are single- or dual-threaded OO workloads:
collection churn, string processing, polymorphic tree walks — no
lambdas, no atomics beyond incidental ones.
"""

from repro.suites.dacapo.workloads import benchmarks
