"""The 14 DaCapo-like benchmark definitions.

Each workload is a small single-process Java-style application: object
graphs, collections, strings and virtual dispatch.  A few (lusearch,
sunflow, xalan, tomcat) use two worker threads, matching the original
suite's mildly parallel members; none use lambdas or explicit atomics.
"""

from repro.harness.core import GuestBenchmark

_AVRORA = r"""
// avrora: discrete-event microcontroller simulation.
class Event {
    var time;
    var kind;
    var payload;
    def init(time, kind, payload) {
        this.time = time;
        this.kind = kind;
        this.payload = payload;
    }
}

class Bench {
    static def run(n) {
        var queue = new ArrayList();
        var regs = new int[16];
        var clock = 0;
        var seeded = 0;
        while (seeded < 8) {
            queue.add(new Event(seeded * 3, seeded % 4, seeded));
            seeded = seeded + 1;
        }
        var processed = 0;
        while (processed < n) {
            // pick earliest event (linear scan priority queue)
            var bestIdx = 0;
            var i = 1;
            while (i < queue.size()) {
                var e = cast(Event, queue.get(i));
                var b = cast(Event, queue.get(bestIdx));
                if (e.time < b.time) { bestIdx = i; }
                i = i + 1;
            }
            var ev = cast(Event, queue.get(bestIdx));
            queue.set(bestIdx, queue.get(queue.size() - 1));
            queue.removeLast();
            clock = ev.time;
            var r = ev.payload % 16;
            if (ev.kind == 0) { regs[r] = regs[r] + 1; }
            if (ev.kind == 1) { regs[r] = regs[r] ^ clock; }
            if (ev.kind == 2) { regs[r] = (regs[r] << 1) & 65535; }
            if (ev.kind == 3) { regs[r] = regs[(r + 1) % 16]; }
            queue.add(new Event(clock + (ev.payload * 7 % 13) + 1,
                                (ev.kind + 1) % 4, ev.payload + 1));
            processed = processed + 1;
        }
        var acc = 0;
        var i = 0;
        while (i < 16) { acc = (acc + regs[i]) % 1000003; i = i + 1; }
        return acc + clock % 97;
    }
}
"""

_BATIK = r"""
// batik: 2D vector-graphics path flattening.
class Bench {
    static def run(n) {
        var acc = 0.0;
        var path = 0;
        while (path < n) {
            var x0 = i2d(path % 10);
            var y0 = i2d(path % 7);
            var cx = x0 + 3.0;
            var cy = y0 + 4.0;
            var x1 = x0 + 6.0;
            var y1 = y0;
            var t = 0;
            while (t < 24) {
                var u = i2d(t) / 24.0;
                var mx = (1.0 - u) * ((1.0 - u) * x0 + u * cx)
                       + u * ((1.0 - u) * cx + u * x1);
                var my = (1.0 - u) * ((1.0 - u) * y0 + u * cy)
                       + u * ((1.0 - u) * cy + u * y1);
                acc = acc + Math.sqrt(mx * mx + my * my);
                t = t + 1;
            }
            path = path + 1;
        }
        return d2i(acc);
    }
}
"""

_ECLIPSE = r"""
// eclipse: IDE-style workspace model churn (maps, lists, strings).
class Resource {
    var name;
    var kind;
    var children;
    def init(name, kind) {
        this.name = name;
        this.kind = kind;
        this.children = new ArrayList();
    }
}

class Bench {
    static def run(n) {
        var workspace = new HashMap();
        var acc = 0;
        var op = 0;
        while (op < n) {
            var name = "src/module" + (op % 12) + "/File" + (op % 31);
            var res = workspace.get(name);
            if (res == null) {
                res = new Resource(name, op % 3);
                workspace.put(name, res);
            }
            var parent = cast(Resource, res);
            parent.children.add(new Resource(name + "#m" + op, 9));
            if (parent.children.size() > 6) {
                parent.children = new ArrayList();
                acc = acc + 1;
            }
            acc = (acc + Str.len(parent.name)) % 1000003;
            op = op + 1;
        }
        return acc * 1000 + workspace.size();
    }
}
"""

_FOP = r"""
// fop: XSL-FO layout: word measurement and line breaking.
class Bench {
    static def run(n) {
        var words = new ArrayList();
        var i = 0;
        while (i < 40) {
            words.add("w" + i + Text.repeat("x", i % 9));
            i = i + 1;
        }
        var lines = 0;
        var page = 0;
        while (page < n) {
            var width = 0;
            var w = 0;
            while (w < words.size()) {
                var word = words.get((w + page) % words.size());
                var len = Str.len(word) * 6 + 4;
                if (width + len > 240) {
                    lines = lines + 1;
                    width = 0;
                }
                width = width + len;
                w = w + 1;
            }
            page = page + 1;
        }
        return lines;
    }
}
"""

_H2 = r"""
// h2: in-memory SQL-ish table with synchronized transactions.
class TxRow {
    var id;
    var balance;
    def init(id, balance) { this.id = id; this.balance = balance; }
}

class Bank {
    var rows;
    def init(count) {
        this.rows = new ref[count];
        var i = 0;
        while (i < count) {
            this.rows[i] = new TxRow(i, 1000);
            i = i + 1;
        }
    }
    synchronized def transfer(a, b, amount) {
        var ra = cast(TxRow, this.rows[a]);
        var rb = cast(TxRow, this.rows[b]);
        if (ra.balance >= amount) {
            ra.balance = ra.balance - amount;
            rb.balance = rb.balance + amount;
            return 1;
        }
        return 0;
    }
    synchronized def total() {
        var acc = 0;
        var i = 0;
        while (i < len(this.rows)) {
            acc = acc + cast(TxRow, this.rows[i]).balance;
            i = i + 1;
        }
        return acc;
    }
}

class Bench {
    static def run(n) {
        var bank = new Bank(32);
        var ok = 0;
        var tx = 0;
        while (tx < n) {
            // Query planning/parsing happens outside the lock, as in a
            // real engine: most cycles are not under the monitor.
            var plan = 0;
            var p = 0;
            while (p < 12) {
                plan = (plan * 31 + tx + p) % 1000003;
                p = p + 1;
            }
            ok = (ok + plan) % 1000003;
            ok = ok + bank.transfer(tx % 32, (tx * 7 + 3) % 32,
                                    (tx % 90) + 1);
            if (tx % 16 == 0) {
                ok = (ok + bank.total()) % 1000003;
            }
            tx = tx + 1;
        }
        return ok;
    }
}
"""

_JYTHON = r"""
// jython: dynamic-language interpreter loop (dispatch-heavy).
interface PyObject {
    def add(other);
    def repr();
}
class PyInt implements PyObject {
    var value;
    def init(value) { this.value = value; }
    def add(other) { return new PyInt(this.value + other.intValue()); }
    def intValue() { return this.value; }
    def repr() { return Str.ofInt(this.value); }
}
class PyStr implements PyObject {
    var value;
    def init(value) { this.value = value; }
    def add(other) { return new PyStr(this.value + other.repr()); }
    def intValue() { return Str.len(this.value); }
    def repr() { return this.value; }
}

class Bench {
    static def run(n) {
        var acc = 0;
        var step = 0;
        var obj = new PyInt(1);
        while (step < n) {
            if (step % 17 == 0) {
                obj = new PyStr("s");
            }
            if (step % 5 == 0) {
                obj = new PyInt(step % 1000);
            }
            var other = new PyInt(step % 7);
            obj = cast(PyObject, obj.add(other));
            acc = (acc + obj.intValue()) % 1000003;
            step = step + 1;
        }
        return acc;
    }
}
"""

_LUINDEX = r"""
// luindex: document tokenization and inverted-index building.
class Bench {
    static def run(n) {
        var index = new HashMap();
        var doc = 0;
        var acc = 0;
        while (doc < n) {
            var text = "the quick brown fox jumps over the lazy dog d" + doc;
            var tokens = Text.split(text, ' ');
            var t = 0;
            while (t < tokens.size()) {
                var term = tokens.get(t);
                var postings = index.get(term);
                if (postings == null) {
                    postings = new ArrayList();
                    index.put(term, postings);
                }
                cast(ArrayList, postings).add(doc);
                t = t + 1;
            }
            acc = (acc + tokens.size()) % 1000003;
            doc = doc + 1;
        }
        return acc * 1000 + index.size() % 1000;
    }
}
"""

_LUSEARCH = r"""
// lusearch-fix: parallel query evaluation over a small index (2 threads).
class Bench {
    static def buildIndex(docs) {
        var index = new HashMap();
        var doc = 0;
        while (doc < docs) {
            var tokens = Text.split(
                "alpha beta gamma delta epsilon zeta eta d" + (doc % 9), ' ');
            var t = 0;
            while (t < tokens.size()) {
                var term = tokens.get(t);
                var postings = index.get(term);
                if (postings == null) {
                    postings = new ArrayList();
                    index.put(term, postings);
                }
                cast(ArrayList, postings).add(doc);
                t = t + 1;
            }
            doc = doc + 1;
        }
        return index;
    }

    static def run(n) {
        var index = Bench.buildIndex(24);
        var latch = new CountDownLatch(2);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 2) {
            var wid = w;
            var t = new Thread(fun () {
                var acc = 0;
                var q = 0;
                var terms = Text.split("alpha beta gamma delta nope", ' ');
                while (q < n) {
                    var term = terms.get((q + wid) % terms.size());
                    var postings = index.get(term);
                    if (postings != null) {
                        acc = acc + cast(ArrayList, postings).size();
                    }
                    q = q + 1;
                }
                total.getAndAdd(acc % 1000003);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            w = w + 1;
        }
        latch.await();
        return total.get();
    }
}
"""

_PMD = r"""
// pmd: static-analysis rule checks over a syntax tree.
class AstNode {
    var kind;
    var kids;
    var depth;
    def init(kind, depth) {
        this.kind = kind;
        this.depth = depth;
        this.kids = new ArrayList();
    }
    def check(acc) {
        var local = acc;
        if (this.kind == 0) { local = local + 1; }         // method decl
        if (this.kind == 1) {
            if (this.depth > 4) { local = local + 10; }    // deep nesting
        }
        if (this.kind == 2) { local = local + this.kids.size(); }
        var i = 0;
        while (i < this.kids.size()) {
            var kid = cast(AstNode, this.kids.get(i));
            local = kid.check(local) % 1000003;
            i = i + 1;
        }
        return local;
    }
}

class Bench {
    static def buildTree(seed, depth) {
        var node = new AstNode(seed % 3, depth);
        if (depth < 5) {
            var k = 0;
            while (k < 2 + seed % 2) {
                node.kids.add(Bench.buildTree(seed * 5 + k + 1, depth + 1));
                k = k + 1;
            }
        }
        return node;
    }

    static def run(n) {
        var acc = 0;
        var file = 0;
        while (file < n) {
            var tree = Bench.buildTree(file + 1, 0);
            acc = tree.check(acc);
            file = file + 1;
        }
        return acc;
    }
}
"""

_SUNFLOW_DC = r"""
// sunflow: two-thread ray tracing over a sphere grid.
class Bench {
    static def trace(wid, n) {
        var acc = 0.0;
        var ray = 0;
        while (ray < n) {
            var ox = i2d((ray * 3 + wid) % 40) / 20.0 - 1.0;
            var oy = i2d((ray * 7 + wid) % 40) / 20.0 - 1.0;
            var sphere = 0;
            while (sphere < 6) {
                var sx = i2d(sphere % 3) - 1.0;
                var sy = i2d(sphere / 3) - 0.5;
                var dx = ox - sx;
                var dy = oy - sy;
                var b = dx * 0.1 + dy * 0.1 - 2.0;
                var c = dx * dx + dy * dy + 3.0;
                var disc = b * b - c;
                if (disc > 0.0) {
                    acc = acc + Math.sqrt(disc);
                }
                sphere = sphere + 1;
            }
            ray = ray + 1;
        }
        return d2i(acc * 100.0);
    }

    static def run(n) {
        var latch = new CountDownLatch(2);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 2) {
            var wid = w;
            var t = new Thread(fun () {
                total.getAndAdd(Bench.trace(wid, n) % 1000003);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            w = w + 1;
        }
        latch.await();
        return total.get();
    }
}
"""

_TOMCAT = r"""
// tomcat: servlet request parsing and session map handling (2 threads).
class Bench {
    static def handle(sessions, raw, wid) {
        var parts = Text.split(raw, '&');
        var acc = 0;
        var i = 0;
        while (i < parts.size()) {
            var kv = parts.get(i);
            var eq = Str.indexOf(kv, "=");
            var key = Str.sub(kv, 0, eq);
            var value = Str.sub(kv, eq + 1, Str.len(kv));
            acc = (acc + Str.len(key) * 3 + Str.len(value)) % 1000003;
            i = i + 1;
        }
        synchronized (sessions) {
            var sid = "sess-" + (acc % 16) + "-" + wid;
            var count = sessions.get(sid);
            if (count == null) {
                sessions.put(sid, 1);
            } else {
                sessions.put(sid, count + 1);
            }
        }
        return acc;
    }

    static def run(n) {
        var sessions = new HashMap();
        var latch = new CountDownLatch(2);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 2) {
            var wid = w;
            var t = new Thread(fun () {
                var acc = 0;
                var req = 0;
                while (req < n) {
                    var raw = "user=u" + (req % 9) + "&page=" + (req % 31)
                            + "&lang=en&token=t" + req;
                    acc = (acc + Bench.handle(sessions, raw, wid)) % 1000003;
                    req = req + 1;
                }
                total.getAndAdd(acc);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            w = w + 1;
        }
        latch.await();
        return total.get() % 1000003;
    }
}
"""

_TRADEBEANS = r"""
// tradebeans: bean-style getter/setter churn over a trading model.
class Quote {
    var symbol;
    var price;
    var volume;
    def init(symbol, price, volume) {
        this.symbol = symbol;
        this.price = price;
        this.volume = volume;
    }
    def getPrice() { return this.price; }
    def setPrice(p) { this.price = p; }
    def getVolume() { return this.volume; }
    def setVolume(v) { this.volume = v; }
}

class Bench {
    static def run(n) {
        var quotes = new ArrayList();
        var i = 0;
        while (i < 24) {
            quotes.add(new Quote("SYM" + i, 10000 + i * 7, 0));
            i = i + 1;
        }
        var acc = 0;
        var order = 0;
        while (order < n) {
            var q = cast(Quote, quotes.get(order % quotes.size()));
            var px = q.getPrice();
            q.setPrice(px + (order % 5) - 2);
            q.setVolume(q.getVolume() + 10);
            acc = (acc + q.getPrice() + q.getVolume()) % 1000003;
            order = order + 1;
        }
        return acc;
    }
}
"""

_TRADESOAP = r"""
// tradesoap: the tradebeans model behind SOAP-style string marshalling.
class Bench {
    static def run(n) {
        var acc = 0;
        var call = 0;
        while (call < n) {
            var body = "<env><op>quote</op><sym>S" + (call % 20)
                     + "</sym><px>" + (1000 + call % 500) + "</px></env>";
            // "Parse" the envelope back.
            var open = Str.indexOf(body, "<px>");
            var close = Str.indexOf(body, "</px>");
            var px = Str.parseInt(Str.sub(body, open + 4, close));
            acc = (acc + px + Str.len(body)) % 1000003;
            call = call + 1;
        }
        return acc;
    }
}
"""

_XALAN = r"""
// xalan: XSLT-ish template transformation of markup (2 threads).
class Bench {
    static def transform(doc) {
        var out = 0;
        var m = Str.len(doc);
        var j = 0;
        var depth = 0;
        while (j < m) {
            var ch = Str.charAt(doc, j);
            if (ch == '<') {
                if (Str.charAt(doc, j + 1) == '/') {
                    depth = depth - 1;
                } else {
                    depth = depth + 1;
                }
                out = (out * 31 + depth) % 1000003;
            }
            j = j + 1;
        }
        return out;
    }

    static def run(n) {
        var doc = "";
        var i = 0;
        while (i < 10) {
            doc = doc + "<row><a>1</a><b>2</b><c><d>3</d></c></row>";
            i = i + 1;
        }
        var source = doc;
        var latch = new CountDownLatch(2);
        var total = new AtomicLong(0);
        var w = 0;
        while (w < 2) {
            var t = new Thread(fun () {
                var acc = 0;
                var pass = 0;
                while (pass < n) {
                    acc = (acc + Bench.transform(source)) % 1000003;
                    pass = pass + 1;
                }
                total.getAndAdd(acc);
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            w = w + 1;
        }
        latch.await();
        return total.get() % 1000003;
    }
}
"""


def _bench(name, source, arg, description, deterministic=True):
    return GuestBenchmark(
        name=name,
        suite="dacapo",
        source=source,
        description=description,
        focus="object-oriented application",
        args=(arg,),
        warmup=4,
        measure=4,
        deterministic=deterministic,
    )


def benchmarks():
    return [
        _bench("avrora", _AVRORA, 900,
               "discrete-event microcontroller simulation"),
        _bench("batik", _BATIK, 120, "vector-graphics path flattening"),
        _bench("eclipse", _ECLIPSE, 700, "IDE workspace model churn"),
        _bench("fop", _FOP, 120, "line-breaking layout"),
        _bench("h2", _H2, 800, "synchronized in-memory transactions"),
        _bench("jython", _JYTHON, 900,
               "dynamic-language dispatch-heavy interpretation"),
        _bench("luindex", _LUINDEX, 120, "inverted-index building"),
        _bench("lusearch-fix", _LUSEARCH, 700,
               "two-thread index query evaluation"),
        _bench("pmd", _PMD, 18, "static-analysis tree checks"),
        _bench("sunflow", _SUNFLOW_DC, 600, "two-thread ray tracing"),
        _bench("tomcat", _TOMCAT, 260,
               "request parsing with a shared session map",
               deterministic=False),
        _bench("tradebeans", _TRADEBEANS, 1200, "bean getter/setter churn"),
        _bench("tradesoap", _TRADESOAP, 600, "SOAP-style marshalling"),
        _bench("xalan", _XALAN, 60, "two-thread markup transformation"),
    ]
