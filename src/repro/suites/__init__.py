"""The benchmark suites.

- :mod:`repro.suites.renaissance` — all 21 benchmarks of the paper's
  Table 1, written in the guest language against the guest frameworks
  (promises, thread pools, streams, STM, actors-over-queues),
- :mod:`repro.suites.dacapo`, :mod:`repro.suites.scalabench`,
  :mod:`repro.suites.specjvm` — the comparison suites, synthesized to
  match each suite's published metric profile (DaCapo/ScalaBench:
  allocation- and dispatch-heavy with little concurrency; SPECjvm2008:
  compute-bound numeric kernels),
- :mod:`repro.suites.registry` — lookup by name/suite.
"""

from repro.suites.registry import all_benchmarks, benchmarks_of, get_benchmark

__all__ = ["all_benchmarks", "benchmarks_of", "get_benchmark"]
