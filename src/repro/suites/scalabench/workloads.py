"""The 12 ScalaBench-like benchmark definitions.

A small functional core (immutable cons lists, tuples, fold/map written
as recursive methods — no lambdas, matching the suite's pre-invokedynamic
vintage) is shared by several workloads; each benchmark layers its own
domain logic on top, always in the allocation-heavy style the paper
attributes to Scala code.
"""

from repro.harness.core import GuestBenchmark

# Immutable cons-list core, shared by the workloads below.
_CORE = r"""
class Cons {
    var head;
    var tail;
    def init(head, tail) { this.head = head; this.tail = tail; }
}

class Lists {
    static def range(lo, hi) {
        var out = null;
        var i = hi - 1;
        while (i >= lo) {
            out = new Cons(i, out);
            i = i - 1;
        }
        return out;
    }

    static def length(list) {
        var n = 0;
        var cur = list;
        while (cur != null) {
            n = n + 1;
            cur = cur.tail;
        }
        return n;
    }

    static def reverse(list) {
        var out = null;
        var cur = list;
        while (cur != null) {
            out = new Cons(cur.head, out);
            cur = cur.tail;
        }
        return out;
    }

    // mapAddMod: fresh list of (x * k + c) % m — allocation per element.
    static def mapAffine(list, k, c, m) {
        var out = null;
        var cur = list;
        while (cur != null) {
            out = new Cons((cur.head * k + c) % m, out);
            cur = cur.tail;
        }
        return Lists.reverse(out);
    }

    static def sumMod(list, m) {
        var acc = 0;
        var cur = list;
        while (cur != null) {
            acc = (acc + cur.head) % m;
            cur = cur.tail;
        }
        return acc;
    }
}
"""

_ACTORS = _CORE + r"""
// actors: lightweight mailbox ping-pong (low rates, as in the suite).
class Mailbox {
    var queue;
    def init() { this.queue = new BlockingQueue(16); }
}

class Bench {
    static def run(n) {
        var a = new Mailbox();
        var b = new Mailbox();
        var t = new Thread(fun () {
            var k = 0;
            while (k < n) {
                var msg = a.queue.take();
                b.queue.put(msg + 1);
                k = k + 1;
            }
        });
        t.daemon = true;
        t.start();
        var acc = 0;
        var k = 0;
        while (k < n) {
            a.queue.put(k);
            acc = (acc + b.queue.take()) % 1000003;
            k = k + 1;
        }
        t.join();
        return acc;
    }
}
"""

_APPARAT = _CORE + r"""
// apparat: bytecode-block transformation over int arrays.
class Bench {
    static def run(n) {
        var code = new int[256];
        var i = 0;
        while (i < 256) {
            code[i] = (i * 37 + 11) % 200;
            i = i + 1;
        }
        var acc = 0;
        var pass = 0;
        while (pass < n) {
            var blocks = null;
            i = 0;
            while (i < 256) {
                if (code[i] % 17 == 0) {
                    blocks = new Cons(i, blocks);
                }
                i = i + 1;
            }
            var mapped = Lists.mapAffine(blocks, 31, pass, 1000003);
            acc = (acc + Lists.sumMod(mapped, 1000003)) % 1000003;
            pass = pass + 1;
        }
        return acc;
    }
}
"""

_FACTORIE = _CORE + r"""
// factorie: inference sweeps allocating factor/assignment records —
// the extreme allocation rate the paper reports (7.4E9 objects).
class Factor {
    var varA;
    var varB;
    var score;
    def init(varA, varB, score) {
        this.varA = varA;
        this.varB = varB;
        this.score = score;
    }
}

class Bench {
    static def run(n) {
        var assignment = new int[24];
        var acc = 0;
        var sweep = 0;
        while (sweep < n) {
            var factors = null;
            var i = 0;
            while (i < 24) {
                var f = new Factor(i, (i + 1) % 24,
                                   (assignment[i] * 3 + sweep) % 7);
                factors = new Cons(f, factors);
                i = i + 1;
            }
            var cur = factors;
            while (cur != null) {
                var f = cast(Factor, cur.head);
                assignment[f.varA] = (assignment[f.varA] + f.score) % 5;
                acc = (acc + f.score) % 1000003;
                cur = cur.tail;
            }
            sweep = sweep + 1;
        }
        return acc;
    }
}
"""

_KIAMA = _CORE + r"""
// kiama: rewriting immutable term trees (fresh nodes per rewrite).
class Term {
    var op;
    var left;
    var right;
    def init(op, left, right) {
        this.op = op;
        this.left = left;
        this.right = right;
    }
}

class Bench {
    static def build(seed, depth) {
        if (depth == 0) {
            return new Term(seed % 5, null, null);
        }
        return new Term(seed % 3,
                        Bench.build(seed * 3 + 1, depth - 1),
                        Bench.build(seed * 7 + 2, depth - 1));
    }

    // Rewrite: op 0/1 swap children; leaves increment — fresh tree.
    static def rewrite(t) {
        if (t == null) { return null; }
        if (t.left == null) {
            return new Term((t.op + 1) % 5, null, null);
        }
        var l = Bench.rewrite(t.left);
        var r = Bench.rewrite(t.right);
        if (t.op == 0) {
            return new Term(1, r, l);
        }
        return new Term(t.op, l, r);
    }

    static def checksum(t, acc) {
        if (t == null) { return acc; }
        var local = (acc * 31 + t.op) % 1000003;
        local = Bench.checksum(t.left, local);
        return Bench.checksum(t.right, local);
    }

    static def run(n) {
        var acc = 0;
        var round = 0;
        while (round < n) {
            var tree = Bench.build(round, 6);
            tree = Bench.rewrite(tree);
            tree = Bench.rewrite(tree);
            acc = Bench.checksum(tree, acc);
            round = round + 1;
        }
        return acc;
    }
}
"""

_SCALAC = _CORE + r"""
// scalac: compiler phases over symbol lists (typer-style passes).
class SymRec {
    var name;
    var kind;
    var hash;
    def init(name, kind, hash) {
        this.name = name;
        this.kind = kind;
        this.hash = hash;
    }
}

class Bench {
    static def run(n) {
        var acc = 0;
        var unit = 0;
        while (unit < n) {
            var syms = null;
            var i = 0;
            while (i < 30) {
                var name = "member" + ((unit * 31 + i) % 40);
                syms = new Cons(new SymRec(name, i % 4, Str.hash(name)),
                                syms);
                i = i + 1;
            }
            // "typer": annotate and filter.
            var typed = null;
            var cur = syms;
            while (cur != null) {
                var s = cast(SymRec, cur.head);
                if (s.kind != 3) {
                    typed = new Cons(new SymRec(s.name, s.kind + 4,
                                                s.hash % 977), typed);
                }
                cur = cur.tail;
            }
            cur = typed;
            while (cur != null) {
                acc = (acc + cast(SymRec, cur.head).hash) % 1000003;
                cur = cur.tail;
            }
            unit = unit + 1;
        }
        return acc;
    }
}
"""

_SCALAP = _CORE + r"""
// scalap: class-file signature parsing (strings + cons lists).
class Bench {
    static def run(n) {
        var acc = 0;
        var sig = 0;
        while (sig < n) {
            var text = "Lscala/collection/Seq<Ljava/lang/String;>;I"
                     + (sig % 13) + "V";
            var parts = null;
            var m = Str.len(text);
            var start = 0;
            var i = 0;
            while (i < m) {
                var ch = Str.charAt(text, i);
                if (ch == ';') {
                    parts = new Cons(Str.sub(text, start, i), parts);
                    start = i + 1;
                }
                i = i + 1;
            }
            var cur = parts;
            while (cur != null) {
                acc = (acc + Str.len(cur.head)) % 1000003;
                cur = cur.tail;
            }
            sig = sig + 1;
        }
        return acc;
    }
}
"""

_SCALARIFORM = _CORE + r"""
// scalariform: pretty-printing token streams.
class Bench {
    static def run(n) {
        var acc = 0;
        var file = 0;
        while (file < n) {
            var tokens = Lists.range(0, 60);
            var indent = 0;
            var out = 0;
            var cur = tokens;
            while (cur != null) {
                var tok = cur.head;
                if (tok % 11 == 0) { indent = indent + 2; }
                if (tok % 13 == 0) {
                    if (indent >= 2) { indent = indent - 2; }
                }
                out = (out * 31 + tok + indent) % 1000003;
                cur = cur.tail;
            }
            acc = (acc + out) % 1000003;
            file = file + 1;
        }
        return acc;
    }
}
"""

_SCALADOC = _CORE + r"""
// scaladoc: documentation model building (strings + records).
class DocEntry {
    var name;
    var comment;
    def init(name, comment) { this.name = name; this.comment = comment; }
}

class Bench {
    static def run(n) {
        var acc = 0;
        var page = 0;
        while (page < n) {
            var entries = null;
            var i = 0;
            while (i < 20) {
                var name = "def method" + i + "(x: Int): Int";
                var comment = "Returns " + i + " * x for page " + page;
                entries = new Cons(new DocEntry(name, comment), entries);
                i = i + 1;
            }
            var cur = entries;
            while (cur != null) {
                var e = cast(DocEntry, cur.head);
                acc = (acc + Str.len(e.name) + Str.len(e.comment)) % 1000003;
                cur = cur.tail;
            }
            page = page + 1;
        }
        return acc;
    }
}
"""

_SCALATEST = _CORE + r"""
// scalatest: many tiny assertion methods (call-dense, tiny frames).
class Asserts {
    def assertEquals(a, b) {
        if (a == b) { return 1; }
        return 0;
    }
    def assertTrue(x) {
        if (x) { return 1; }
        return 0;
    }
    def assertInRange(x, lo, hi) {
        return this.assertTrue(x >= lo) * this.assertTrue(x <= hi);
    }
}

class Bench {
    static def run(n) {
        var a = new Asserts();
        var passed = 0;
        var test = 0;
        while (test < n) {
            passed = passed + a.assertEquals(test % 7, test % 7);
            passed = passed + a.assertTrue(test >= 0);
            passed = passed + a.assertInRange(test % 100, 0, 99);
            passed = passed + a.assertEquals(test % 3, (test + 3) % 3);
            test = test + 1;
        }
        return passed;
    }
}
"""

_SCALAXB = _CORE + r"""
// scalaxb: XML-schema binding generation (string assembly).
class Bench {
    static def run(n) {
        var acc = 0;
        var schema = 0;
        while (schema < n) {
            var fields = null;
            var i = 0;
            while (i < 12) {
                fields = new Cons("field" + i + ": Type" + (i % 5), fields);
                i = i + 1;
            }
            var code = "case class Gen" + schema + "(";
            var cur = fields;
            while (cur != null) {
                code = code + cur.head + ", ";
                cur = cur.tail;
            }
            code = code + ")";
            acc = (acc + Str.len(code) + Str.hash(code) % 97) % 1000003;
            schema = schema + 1;
        }
        return acc;
    }
}
"""

_SPECS = _CORE + r"""
// specs: BDD-style specification execution (records + closures-free).
class SpecResult {
    var label;
    var ok;
    def init(label, ok) { this.label = label; this.ok = ok; }
}

class Bench {
    static def run(n) {
        var acc = 0;
        var suite = 0;
        while (suite < n) {
            var results = null;
            var ex = 0;
            while (ex < 16) {
                var value = (suite * 31 + ex * 7) % 100;
                var ok = 0;
                if (value % 2 == 0) { ok = 1; }
                results = new Cons(
                    new SpecResult("example " + ex + " should hold", ok),
                    results);
                ex = ex + 1;
            }
            var cur = results;
            while (cur != null) {
                var r = cast(SpecResult, cur.head);
                acc = (acc + r.ok * Str.len(r.label)) % 1000003;
                cur = cur.tail;
            }
            suite = suite + 1;
        }
        return acc;
    }
}
"""

_TMT = _CORE + r"""
// tmt: topic-model training sweeps (double arrays + record churn).
class Bench {
    static def run(n) {
        var topics = 8;
        var words = 40;
        var counts = new double[topics * words];
        var r = new PlainRandom(99);
        var i = 0;
        while (i < topics * words) {
            counts[i] = r.nextDouble() + 0.1;
            i = i + 1;
        }
        var acc = 0.0;
        var sweep = 0;
        while (sweep < n) {
            var w = 0;
            while (w < words) {
                var norm = 0.0;
                var t = 0;
                while (t < topics) {
                    norm = norm + counts[t * words + w];
                    t = t + 1;
                }
                t = 0;
                while (t < topics) {
                    var p = counts[t * words + w] / norm;
                    counts[t * words + w] = p * 0.9 + 0.0125;
                    acc = acc + p * p;
                    t = t + 1;
                }
                w = w + 1;
            }
            sweep = sweep + 1;
        }
        return d2i(acc * 1000.0);
    }
}
"""


def _bench(name, source, arg, description):
    return GuestBenchmark(
        name=name,
        suite="scalabench",
        source=source,
        description=description,
        focus="functional, allocation-heavy",
        args=(arg,),
        warmup=4,
        measure=4,
    )


def benchmarks():
    return [
        _bench("actors", _ACTORS, 250, "mailbox ping-pong pair"),
        _bench("apparat", _APPARAT, 90, "bytecode-block transformation"),
        _bench("factorie", _FACTORIE, 350,
               "inference sweeps with per-factor allocation"),
        _bench("kiama", _KIAMA, 22, "immutable term-tree rewriting"),
        _bench("scalac", _SCALAC, 90, "typer-style symbol passes"),
        _bench("scaladoc", _SCALADOC, 90, "doc model building"),
        _bench("scalap", _SCALAP, 220, "signature parsing"),
        _bench("scalariform", _SCALARIFORM, 160,
               "token-stream pretty-printing"),
        _bench("scalatest", _SCALATEST, 900, "assertion-dense test runs"),
        _bench("scalaxb", _SCALAXB, 120, "schema binding generation"),
        _bench("specs", _SPECS, 120, "BDD specification execution"),
        _bench("tmt", _TMT, 35, "topic-model training sweeps"),
    ]
