"""ScalaBench-like workloads (paper Table 6, 12 benchmarks).

ScalaBench's published profile (paper Table 7 / Section 8): functional
Scala programs with *much* higher object-allocation rates than Java
(short-lived immutable objects everywhere), deep method-call chains,
modest CPU utilization, and almost no modern concurrency primitives.
The reproductions allocate aggressively — immutable list cells, tuples,
small case-class-like records — with single-threaded control flow.
"""

from repro.suites.scalabench.workloads import benchmarks
