"""Benchmark registry: lookup by name or by suite."""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ReproError

SUITES = ("renaissance", "dacapo", "scalabench", "specjvm")


@lru_cache(maxsize=1)
def all_benchmarks() -> tuple:
    """Every benchmark of every suite, suite order then table order."""
    out = []
    for suite in SUITES:
        out.extend(benchmarks_of(suite))
    return tuple(out)


@lru_cache(maxsize=8)
def benchmarks_of(suite: str) -> tuple:
    if suite == "renaissance":
        from repro.suites.renaissance import benchmarks
    elif suite == "dacapo":
        from repro.suites.dacapo import benchmarks
    elif suite == "scalabench":
        from repro.suites.scalabench import benchmarks
    elif suite == "specjvm":
        from repro.suites.specjvm import benchmarks
    else:
        raise ReproError(f"unknown suite {suite!r}; have {SUITES}")
    return tuple(benchmarks())


def get_benchmark(name: str):
    for bench in all_benchmarks():
        if bench.name == name:
            return bench
    raise ReproError(f"unknown benchmark {name!r}")
