"""Benchmark registry: lookup by name or by suite."""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ReproError

SUITES = ("renaissance", "dacapo", "scalabench", "specjvm")


@lru_cache(maxsize=1)
def all_benchmarks() -> tuple:
    """Every benchmark of every suite, suite order then table order."""
    out = []
    for suite in SUITES:
        out.extend(benchmarks_of(suite))
    return tuple(out)


@lru_cache(maxsize=8)
def benchmarks_of(suite: str) -> tuple:
    if suite == "renaissance":
        from repro.suites.renaissance import benchmarks
    elif suite == "dacapo":
        from repro.suites.dacapo import benchmarks
    elif suite == "scalabench":
        from repro.suites.scalabench import benchmarks
    elif suite == "specjvm":
        from repro.suites.specjvm import benchmarks
    else:
        raise ReproError(f"unknown suite {suite!r}; have {SUITES}")
    out = tuple(benchmarks())
    # Duplicate names within one suite would silently shadow each other
    # in get_benchmark() and in suite sweeps; reject them loudly.
    # (Cross-suite duplicates are legitimate: "sunflow" exists in both
    # DaCapo and SPECjvm2008, as in the real suites.)
    seen: dict[str, int] = {}
    for i, bench in enumerate(out):
        if bench.name in seen:
            raise ReproError(
                f"duplicate benchmark name {bench.name!r} in suite "
                f"{suite!r} (positions {seen[bench.name]} and {i}); "
                "benchmark names must be unique within a suite")
        seen[bench.name] = i
    return out


def get_benchmark(name: str, suite: str | None = None):
    """Look up a benchmark by name (optionally within one suite).

    Without ``suite``, the first match in suite order wins — pass
    ``suite=`` to disambiguate cross-suite duplicates like "sunflow".
    """
    pool = all_benchmarks() if suite is None else benchmarks_of(suite)
    for bench in pool:
        if bench.name == name:
            return bench
    where = f" in suite {suite!r}" if suite is not None else ""
    raise ReproError(f"unknown benchmark {name!r}{where}")


def run_suite(suite="renaissance", **kwargs):
    """Resilient full-suite sweep; see :func:`repro.faults.run_suite`.

    Re-exported here so suite-level callers need only the registry:
    ``run_suite("renaissance", continue_on_error=True)`` completes the
    healthy workloads and returns a SuiteResult with one FailureReport
    per quarantined benchmark.  ``jobs=N`` shards the sweep across N
    worker processes with a byte-identical merged result
    (:mod:`repro.harness.parallel`).
    """
    from repro.faults.resilience import run_suite as _run_suite

    return _run_suite(suite, **kwargs)
