"""Renaissance (PLDI 2019) reproduction on a simulated JVM.

The package reproduces "Renaissance: Benchmarking Suite for Parallel
Applications on the JVM" end to end in pure Python:

- :mod:`repro.jvm` — the simulated JVM substrate (bytecode, scheduler,
  monitors, heap, cache model, cycle cost model),
- :mod:`repro.lang` — the guest language and its framework stdlib,
- :mod:`repro.jit` — the Graal-like JIT with the paper's seven
  optimizations and deoptimization,
- :mod:`repro.runtime` — the :class:`~repro.runtime.vm.VM` facade,
- :mod:`repro.suites` — all 68 workloads (Renaissance + comparison suites),
- :mod:`repro.harness` / :mod:`repro.metrics` / :mod:`repro.ckmetrics` /
  :mod:`repro.analysis` — measurement and per-table/figure experiment
  drivers,
- :mod:`repro.faults` — deterministic fault injection and harness
  resilience (seeded FaultPlans, watchdog, deadlock diagnostics,
  quarantined suite sweeps).

Quick start::

    from repro.lang import compile_program
    from repro.runtime import VM

    vm = VM(jit="graal")
    vm.load(compile_program(source_text))
    vm.invoke("Main.main")

See README.md for the full tour and DESIGN.md for the paper-to-module
substitution map.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
