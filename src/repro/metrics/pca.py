"""Principal component analysis (paper Section 4.2).

Metrics are standardized to zero mean / unit variance per column, then
PCA (via SVD) produces loadings (Table 3) and per-benchmark scores
(Figures 1 and 8).  Signs of components are canonicalized so the largest
loading of each PC is positive, making results stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.profiler import METRIC_NAMES


@dataclass
class PcaResult:
    benchmarks: list[str]
    suites: list[str]
    metric_names: list[str]
    loadings: np.ndarray        # (K metrics, K components)
    scores: np.ndarray          # (N benchmarks, K components)
    explained_variance: np.ndarray

    def loading_table(self, components: int = 4) -> list[list[tuple[str, float]]]:
        """Per-PC metric loadings sorted by |value| desc (Table 3)."""
        table = []
        for pc in range(components):
            column = [(self.metric_names[i], float(self.loadings[i, pc]))
                      for i in range(len(self.metric_names))]
            column.sort(key=lambda item: abs(item[1]), reverse=True)
            table.append(column)
        return table

    def variance_fraction(self, components: int = 4) -> float:
        total = float(self.explained_variance.sum())
        if total == 0:
            return 0.0
        return float(self.explained_variance[:components].sum()) / total

    def suite_scores(self, suite: str, pc: int) -> list[float]:
        return [float(self.scores[i, pc])
                for i, s in enumerate(self.suites) if s == suite]


def run_pca(rows: list[dict], benchmarks: list[str],
            suites: list[str]) -> PcaResult:
    """``rows[i]`` maps metric name -> normalized value for benchmark i."""
    names = list(METRIC_NAMES)
    x = np.array([[row.get(name, 0.0) for name in names] for row in rows],
                 dtype=float)
    if x.shape[0] < 3:
        raise ValueError("PCA needs at least 3 benchmarks")
    mean = x.mean(axis=0)
    std = x.std(axis=0, ddof=0)
    std[std == 0.0] = 1.0       # constant metric: contributes nothing
    y = (x - mean) / std

    # SVD-based PCA: y = U S Vt; loadings are V, scores are Y V.
    _u, s, vt = np.linalg.svd(y, full_matrices=False)
    loadings = vt.T
    # Canonical signs: largest-|loading| entry of each PC positive.
    for pc in range(loadings.shape[1]):
        anchor = int(np.argmax(np.abs(loadings[:, pc])))
        if loadings[anchor, pc] < 0:
            loadings[:, pc] = -loadings[:, pc]
    scores = y @ loadings
    explained = (s ** 2) / max(1, (y.shape[0] - 1))
    return PcaResult(list(benchmarks), list(suites), names,
                     loadings, scores, explained)
