"""Normalization by reference cycles (paper Section 3.2).

Absolute counts reflect how long a benchmark runs; the paper instead
uses *rates*: every metric except ``cpu`` is divided by the reference
cycles executed in the measured interval, making metrics comparable
across benchmarks.
"""

from __future__ import annotations

from repro.metrics.profiler import METRIC_NAMES, SANITIZER_METRIC_NAMES

#: Sanitizer metrics that are sizes or verdicts, not event streams —
#: reported as-is instead of per-cycle rates.
_SANITIZER_ABSOLUTE = frozenset({"races_found", "mean_lockset"})


def normalize_metrics(raw: dict, reference_cycles: int) -> dict:
    """Raw Table 2 counts -> rates per reference cycle (cpu unchanged,
    expressed as a fraction in [0, 1])."""
    if reference_cycles <= 0:
        raise ValueError("reference_cycles must be positive")
    out = {}
    for name in METRIC_NAMES:
        value = raw.get(name, 0)
        if name == "cpu":
            out[name] = value / 100.0
        else:
            out[name] = value / reference_cycles
    return out


def normalize_sanitizer_metrics(raw: dict, reference_cycles: int) -> dict:
    """Raw sanitizer counts -> rates per reference cycle.

    Event-stream counters (checks, promotions, HB edges, acquisitions)
    become rates like Table 2's metrics; ``races_found`` and
    ``mean_lockset`` stay absolute (a verdict and a size are meaningless
    as per-cycle rates).
    """
    if reference_cycles <= 0:
        raise ValueError("reference_cycles must be positive")
    out = {}
    for name in SANITIZER_METRIC_NAMES:
        value = raw.get(name, 0)
        if name in _SANITIZER_ABSOLUTE:
            out[name] = value
        else:
            out[name] = value / reference_cycles
    return out
