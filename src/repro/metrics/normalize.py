"""Normalization by reference cycles (paper Section 3.2).

Absolute counts reflect how long a benchmark runs; the paper instead
uses *rates*: every metric except ``cpu`` is divided by the reference
cycles executed in the measured interval, making metrics comparable
across benchmarks.
"""

from __future__ import annotations

from repro.metrics.profiler import METRIC_NAMES


def normalize_metrics(raw: dict, reference_cycles: int) -> dict:
    """Raw Table 2 counts -> rates per reference cycle (cpu unchanged,
    expressed as a fraction in [0, 1])."""
    if reference_cycles <= 0:
        raise ValueError("reference_cycles must be positive")
    out = {}
    for name in METRIC_NAMES:
        value = raw.get(name, 0)
        if name == "cpu":
            out[name] = value / 100.0
        else:
            out[name] = value / reference_cycles
    return out
