"""Characterizing metrics (paper Section 3) and the PCA analysis
(Section 4): collection, normalization by reference cycles, and the
principal-component computation behind Figures 1/8 and Table 3.
"""

from repro.metrics.profiler import (
    METRIC_NAMES,
    SANITIZER_METRIC_NAMES,
    SERVE_METRIC_NAMES,
    MetricsPlugin,
    collect_checked_metrics,
    collect_metrics,
)
from repro.metrics.normalize import normalize_metrics, normalize_sanitizer_metrics
from repro.metrics.pca import PcaResult, run_pca

__all__ = [
    "METRIC_NAMES", "SANITIZER_METRIC_NAMES", "SERVE_METRIC_NAMES",
    "MetricsPlugin",
    "collect_metrics", "collect_checked_metrics",
    "normalize_metrics", "normalize_sanitizer_metrics",
    "PcaResult", "run_pca",
]
