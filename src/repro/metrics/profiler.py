"""Metric collection (paper Section 3.3).

The paper collects Table 2's metrics with DiSL bytecode instrumentation
(full coverage, separate runs from the hardware counters).  The
reproduction's analogue: run the benchmark on the *interpreter* (full
bytecode coverage, like instrumented runs) and read the VM counters,
which the substrate bumps on every executed primitive.  ``cpu`` and
``cachemiss`` come from the scheduler and the cache simulator — the
stand-ins for ``top`` and ``perf``.
"""

from __future__ import annotations

from repro.harness.core import GuestBenchmark, Runner
from repro.harness.plugins import MergeablePlugin

#: Table 2 metric names, in the paper's order.
METRIC_NAMES = (
    "synch", "wait", "notify", "atomic", "park",
    "cpu", "cachemiss", "object", "array", "method", "idynamic",
)

#: Observability counters (repro.trace): flight-recorder events emitted
#: and dropped plus profiler samples taken during the steady state.
#: All zero unless a recorder is attached.
TRACE_METRIC_NAMES = ("trace_events", "trace_dropped", "trace_samples")

#: Host tier-1 engine counters (repro.jvm.tier1): method promotions,
#: emitted superblocks, deopts by any reason, and simulated compile
#: cycles.  All zero unless the run used ``engine="tier1"``.  These are
#: host-side bookkeeping, not guest counters — they never participate
#: in the byte-identity contract.
TIER1_METRIC_NAMES = ("tier1_promotions", "tier1_compiled_blocks",
                      "tier1_deopts", "tier1_compile_cycles")

#: Host tier-2 engine counters (repro.jit.machine.Tier2Machine):
#: machine-code promotions to host closures, emitted superblocks, OSR
#: entries compiled on demand, deopts by any reason, and simulated
#: compile cycles.  All zero unless the run used ``engine="tier2"``
#: with a JIT attached.  Host-side bookkeeping like the tier-1 set —
#: never part of the byte-identity contract.
TIER2_METRIC_NAMES = ("tier2_promotions", "tier2_compiled_blocks",
                      "tier2_osr_entries", "tier2_deopts",
                      "tier2_compile_cycles")

#: Compiler-verification counters (repro.sanitize.irverify /
#: blockverify): IR graphs verified, per-phase re-checks, superblocks
#: validated, and issues raised.  All zero unless the run used
#: ``verify_ir=True``.  Host-side bookkeeping, like the tier-1
#: counters — never part of the byte-identity contract.
IRVERIFY_METRIC_NAMES = ("irverify_graphs", "irverify_phase_checks",
                         "irverify_blocks", "irverify_issues")

#: Benchmark-as-a-service counters (repro.serve): job/unit lifecycle,
#: store dedup effectiveness, HTTP traffic, and supervision events.
#: Service-side bookkeeping — exported as Prometheus-style counters by
#: ``GET /metrics`` and never part of the byte-identity contract.
SERVE_METRIC_NAMES = (
    "serve_jobs_submitted", "serve_jobs_completed", "serve_jobs_failed",
    "serve_jobs_cancelled", "serve_jobs_recovered",
    "serve_units_total", "serve_units_cached", "serve_units_deduped",
    "serve_units_executed", "serve_units_failed", "serve_units_skipped",
    "serve_http_requests", "serve_http_errors", "serve_events_streamed",
    "serve_workers_respawned",
)

#: Sanitizer counters exported from checked runs (repro.sanitize), for
#: Table-7-style per-benchmark tables.  ``mean_lockset`` is derived:
#: average number of monitors held at each acquisition.
SANITIZER_METRIC_NAMES = (
    "race_checks", "races_found", "vc_promotions", "hb_edges",
    "lock_acquires", "mean_lockset",
)


class MetricsPlugin(MergeablePlugin):
    """Harness plugin capturing steady-state Table 2 metrics.

    Over a suite sweep the plugin keeps the metrics of the most recent
    run in ``raw``/``reference_cycles`` and a ``(benchmark, raw)``
    history in ``per_run``.  It implements the
    :class:`~repro.harness.plugins.MergeablePlugin` protocol, so a
    ``jobs=N`` sharded sweep reassembles the same history a serial
    sweep would.
    """

    def __init__(self) -> None:
        self.raw: dict | None = None
        self.reference_cycles = 0
        self.per_run: list[tuple[str, dict]] = []
        self._steady_snapshot = None
        self._timing = None
        self._pending: list[tuple[str, dict, int]] = []

    def before_run(self, vm, benchmark) -> None:
        # Fresh VM per run: drop snapshots of the previous benchmark.
        self._steady_snapshot = None
        self._timing = None

    def before_iteration(self, vm, benchmark, index, warmup) -> None:
        if not warmup and self._steady_snapshot is None:
            self._steady_snapshot = vm.counters.snapshot()
            self._timing = vm.timing_snapshot()

    def after_run(self, vm, benchmark, result) -> None:
        delta = vm.counters.diff(self._steady_snapshot or {})
        interval = vm.interval_stats(self._timing or vm.timing_snapshot())
        self.raw = {name: delta.get(name, 0) for name in METRIC_NAMES
                    if name != "cpu"}
        self.raw["cpu"] = interval["cpu"] * 100.0
        for name in TRACE_METRIC_NAMES:
            self.raw[name] = delta.get(name, 0)
        tier1 = getattr(vm.interpreter, "tier1_metrics", None)
        tier1 = tier1() if tier1 is not None else {}
        for name in TIER1_METRIC_NAMES:
            self.raw[name] = tier1.get(name, 0)
        tier2 = getattr(vm.interpreter, "tier2_metrics", None)
        tier2 = tier2() if tier2 is not None else {}
        for name in TIER2_METRIC_NAMES:
            self.raw[name] = tier2.get(name, 0)
        irverify = getattr(vm, "irverify_stats", None) or {}
        for name in IRVERIFY_METRIC_NAMES:
            self.raw[name] = irverify.get(name[len("irverify_"):], 0)
        self.reference_cycles = delta.get("reference_cycles", 0)
        self.per_run.append((benchmark.name, dict(self.raw)))
        self._pending.append(
            (benchmark.name, dict(self.raw), self.reference_cycles))

    # -- MergeablePlugin protocol --------------------------------------
    def snapshot_run(self):
        pending, self._pending = self._pending, []
        return pending

    def absorb_run(self, payload) -> None:
        for name, raw, reference_cycles in payload:
            self.raw = dict(raw)
            self.reference_cycles = reference_cycles
            self.per_run.append((name, dict(raw)))


def collect_metrics(benchmark: GuestBenchmark, *, cores: int = 8,
                    warmup: int | None = None,
                    measure: int | None = None) -> tuple[dict, int]:
    """Profile ``benchmark`` on the interpreter (a "profiling run").

    Returns ``(raw_metrics, reference_cycles)`` — raw dynamic counts per
    Table 2 plus CPU utilization in percent, and the steady-state
    reference cycles used for normalization.
    """
    plugin = MetricsPlugin()
    runner = Runner(benchmark, jit=None, cores=cores, plugins=(plugin,))
    runner.run(warmup=1 if warmup is None else warmup, measure=measure)
    return plugin.raw, plugin.reference_cycles


def collect_checked_metrics(benchmark: GuestBenchmark, *, cores: int = 8,
                            schedule_seed: int = 0,
                            warmup: int | None = None,
                            measure: int | None = None) -> tuple[dict, int]:
    """Profile ``benchmark`` in checked mode (sanitizer attached).

    Returns ``(raw_sanitizer_metrics, reference_cycles)``: the
    :data:`SANITIZER_METRIC_NAMES` counts of the whole run plus the
    steady-state reference cycles for normalization.
    """
    plugin = MetricsPlugin()
    runner = Runner(benchmark, jit=None, cores=cores,
                    schedule_seed=schedule_seed, plugins=(plugin,),
                    sanitize=True)
    runner.run(warmup=1 if warmup is None else warmup, measure=measure)
    counters = runner.last_vm.counters
    raw = {name: getattr(counters, name)
           for name in SANITIZER_METRIC_NAMES if name != "mean_lockset"}
    raw["mean_lockset"] = (
        counters.lockset_entries / counters.lock_acquires
        if counters.lock_acquires else 0.0)
    return raw, plugin.reference_cycles
