"""Exception hierarchy for the repro package.

Errors are split into three families:

- :class:`ReproError` — base class for everything raised on purpose.
- Host-side errors (:class:`LinkError`, :class:`CompileError`, ...) signal
  misuse of the library or bugs in guest programs detected at build time.
- :class:`GuestRuntimeError` and subclasses signal runtime faults of the
  *guest* program (null dereference, out-of-bounds access, division by
  zero).  They deliberately mirror the JVM exceptions of the same name.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LexError(ReproError):
    """Raised by the guest-language lexer on malformed input."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(ReproError):
    """Raised by the guest-language parser on a syntax error."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class TypeCheckError(ReproError):
    """Raised by the guest-language type checker."""


class CompileError(ReproError):
    """Raised by bytecode codegen or the JIT on an internal inconsistency."""


class LinkError(ReproError):
    """Raised when class/method/field resolution fails at link time."""


class VMError(ReproError):
    """Raised on an internal inconsistency of the simulated JVM."""


class GuestRuntimeError(ReproError):
    """Base class for guest-program runtime faults (guest 'exceptions')."""


class GuestNullPointerError(GuestRuntimeError):
    """Guest dereferenced a null reference."""


class GuestBoundsError(GuestRuntimeError):
    """Guest accessed an array out of bounds."""


class GuestArithmeticError(GuestRuntimeError):
    """Guest divided by zero."""


class GuestCastError(GuestRuntimeError):
    """Guest checkcast failed."""


class DeadlockError(VMError):
    """All guest threads are blocked and none can make progress."""
