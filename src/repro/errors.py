"""Exception hierarchy for the repro package.

Errors are split into three families:

- :class:`ReproError` — base class for everything raised on purpose.
- Host-side errors (:class:`LinkError`, :class:`CompileError`, ...) signal
  misuse of the library or bugs in guest programs detected at build time.
- :class:`GuestRuntimeError` and subclasses signal runtime faults of the
  *guest* program (null dereference, out-of-bounds access, division by
  zero).  They deliberately mirror the JVM exceptions of the same name.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LexError(ReproError):
    """Raised by the guest-language lexer on malformed input."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(ReproError):
    """Raised by the guest-language parser on a syntax error."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class TypeCheckError(ReproError):
    """Raised by the guest-language type checker."""


class CompileError(ReproError):
    """Raised by bytecode codegen or the JIT on an internal inconsistency."""


class LinkError(ReproError):
    """Raised when class/method/field resolution fails at link time."""


class VMError(ReproError):
    """Raised on an internal inconsistency of the simulated JVM."""


class GuestRuntimeError(ReproError):
    """Base class for guest-program runtime faults (guest 'exceptions')."""


class GuestNullPointerError(GuestRuntimeError):
    """Guest dereferenced a null reference."""


class GuestBoundsError(GuestRuntimeError):
    """Guest accessed an array out of bounds."""


class GuestArithmeticError(GuestRuntimeError):
    """Guest divided by zero."""


class GuestCastError(GuestRuntimeError):
    """Guest checkcast failed."""


class GuestOutOfMemoryError(GuestRuntimeError):
    """Guest exhausted the (simulated) heap.

    Raised either organically when a :class:`repro.jvm.heap.Heap` has a
    configured ``limit_words``, or by the fault injector
    (:mod:`repro.faults`) to model heap pressure.  ``injected`` is True
    in the latter case so the resilience layer knows not to retry.
    """

    def __init__(self, message: str, *, injected: bool = False) -> None:
        super().__init__(message)
        self.injected = injected


class InjectedFault(GuestRuntimeError):
    """A guest exception raised on purpose by the fault injector.

    Always carries ``injected = True``; the resilience layer never
    retries these (the same plan would refire the same fault).
    """

    injected = True


class ThreadKilledError(GuestRuntimeError):
    """A guest thread was killed by the fault injector."""

    injected = True


class WorkerCrashError(ReproError):
    """A sweep worker process died or raised outside the harness.

    Carries the worker's formatted traceback (``worker_traceback``) so a
    crash inside a shard surfaces the real stack instead of a bare
    pool error, plus the worker id and the unit it was running.
    """

    def __init__(self, message: str, *, worker_traceback: str = "",
                 worker: int | None = None, unit: str | None = None) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback
        self.worker = worker
        self.unit = unit


class StageTimeout(ReproError):
    """A durable-sweep stage exceeded its host-wall-clock deadline.

    Raised (or synthesized into a FailureReport) by the durable
    controller when a unit's ``prepare``/``run``/``collect``/``teardown``
    stage overruns its :class:`~repro.harness.durable.DurablePolicy`
    deadline; on the parallel path the supervisor kills the hung worker.
    """

    def __init__(self, message: str, *, stage: str = "?",
                 deadline: float = 0.0, elapsed: float = 0.0) -> None:
        super().__init__(message)
        self.stage = stage
        self.deadline = deadline
        self.elapsed = elapsed


class SweepInterrupted(ReproError):
    """A durable sweep was stopped by SIGINT/SIGTERM before finishing.

    The controller drains in-flight units, journals the stop, and raises
    this with the partial progress counters — ``--resume`` on the same
    directory picks up exactly where the sweep left off.
    """

    def __init__(self, message: str, *, stats: dict | None = None) -> None:
        super().__init__(message)
        self.stats = dict(stats or {})


class DurableSweepError(ReproError):
    """Misuse of the durable-sweep controller (bad directory, spec
    mismatch on resume, or plugins that cannot be persisted)."""


class StoreLockedError(DurableSweepError):
    """The sweep directory's journal/store is held by another writer.

    The journal and the content-addressed store assume a single writer;
    :class:`~repro.harness.store.StoreLock` enforces it with an
    advisory ``flock`` so a durable sweep and a ``repro.serve`` service
    (or two services) can never interleave writes into one directory.
    """


class ServeError(ReproError):
    """Misuse of the benchmark service (:mod:`repro.serve`): a bad
    sweep spec, an unknown job id, or a submit after drain began."""


class DeadlockError(VMError):
    """All guest threads are blocked and none can make progress.

    Carries a structured ``thread_dump`` (see
    :meth:`repro.jvm.scheduler.Scheduler.thread_dump`) with per-thread
    state, held/waited monitors and the owner cycle, so a failed run is
    diagnosable without rerunning under a debugger.
    """

    def __init__(self, message: str, *, thread_dump: dict | None = None) -> None:
        super().__init__(message)
        self.thread_dump = thread_dump


class WatchdogTimeout(VMError):
    """The scheduler's global cycle watchdog fired.

    Raised when the simulated clock exceeds ``watchdog_cycles`` — a
    runaway guest loop aborts with a thread dump instead of hanging the
    host process.
    """

    def __init__(self, message: str, *, thread_dump: dict | None = None,
                 clock: int = 0) -> None:
        super().__init__(message)
        self.thread_dump = thread_dump
        self.clock = clock
