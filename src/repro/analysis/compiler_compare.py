"""Graal-vs-C2 comparison (Figure 6).

Runs each benchmark under both compiler configurations and reports the
speedup of Graal relative to the C2 baseline with a 99% confidence
interval, classifying each benchmark as a Graal win, a C2 win, or a tie
(CI straddles 1.0) — the categories of the paper's Figure 6 narrative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.jmh import run_jmh
from repro.harness.stats import confidence_interval, geomean, mean
from repro.jit.pipeline import c2_config, graal_config


@dataclass
class CompareRow:
    benchmark: str
    suite: str
    speedup: float                  # >1: Graal faster than C2
    ci: tuple[float, float]

    @property
    def verdict(self) -> str:
        lo, hi = self.ci
        if lo > 1.0:
            return "graal"
        if hi < 1.0:
            return "c2"
        return "tie"

    def format(self) -> str:
        lo, hi = self.ci
        return (f"{self.benchmark:24s} {self.speedup:5.2f}x "
                f"[{lo:4.2f}, {hi:4.2f}] {self.verdict}")


def compare(benchmark, *, forks: int = 3, warmup=None, measure=None
            ) -> CompareRow:
    graal = run_jmh(benchmark, jit=graal_config(), forks=forks,
                    warmup=warmup, measure=measure)
    c2 = run_jmh(benchmark, jit=c2_config(), forks=forks,
                 warmup=warmup, measure=measure)
    # Per-fork speedups give the CI its variance.
    ratios = [c2_wall / graal_wall
              for c2_wall, graal_wall in zip(c2.fork_means, graal.fork_means)
              if graal_wall > 0]
    return CompareRow(
        benchmark=benchmark.name,
        suite=benchmark.suite,
        speedup=mean(ratios),
        ci=confidence_interval(ratios),
    )


def compare_suites(benchmarks, *, forks: int = 3, warmup=None,
                   measure=None) -> list[CompareRow]:
    return [compare(b, forks=forks, warmup=warmup, measure=measure)
            for b in benchmarks]


def summarize(rows: list[CompareRow]) -> dict:
    """The Figure 6 headline numbers: win counts and median speedups."""
    graal_wins = [r for r in rows if r.verdict == "graal"]
    c2_wins = [r for r in rows if r.verdict == "c2"]
    ties = [r for r in rows if r.verdict == "tie"]
    return {
        "graal_wins": len(graal_wins),
        "c2_wins": len(c2_wins),
        "ties": len(ties),
        "median_graal_speedup": _median([r.speedup for r in graal_wins]),
        "median_c2_advantage": _median([1 / r.speedup for r in c2_wins])
        if c2_wins else 0.0,
        "geomean_speedup": geomean([r.speedup for r in rows]),
    }


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[len(ordered) // 2]
