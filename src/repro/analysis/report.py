"""One-shot evaluation report: ``python -m repro.analysis.report``.

Runs a compact version of every paper experiment and prints the
regenerated tables/figures as text.  ``--full`` widens to all 68
benchmarks (slow).  The pytest-benchmark modules under ``benchmarks/``
wrap the same drivers with shape assertions; this CLI is for humans.
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.analysis.ck_experiment import (
    ck_table,
    format_table4,
    loaded_class_counts,
    suite_summary,
)
from repro.analysis.code_size import code_size_table, suite_geomeans
from repro.analysis.compile_time import compile_time_shares, format_table16
from repro.analysis.compiler_compare import compare_suites
from repro.analysis.compiler_compare import summarize as cc_summarize
from repro.analysis.guard_counts import format_guard_table, guard_table
from repro.analysis.hot_methods import format_method_table, mhs_method_table
from repro.analysis.impact import format_table, impact_table, summarize
from repro.analysis.metrics_experiment import (
    format_loadings,
    format_table7,
    pca_experiment,
    profile_benchmarks,
)
from repro.suites.registry import all_benchmarks, get_benchmark

QUICK = (
    "scrabble", "streams-mnemonics", "future-genetic", "fj-kmeans",
    "log-regression", "als", "finagle-chirper",
    "avrora", "h2", "factorie", "scalatest",
    "scimark.lu.small", "compress",
)

HEADLINES = {
    "fj-kmeans": "LLC", "future-genetic": "AC", "finagle-chirper": "EAWA",
    "scrabble": "MHS", "streams-mnemonics": "DS", "log-regression": "GM",
    "als": "LV",
}


def _benchmarks(full: bool):
    if full:
        return [dataclasses.replace(b, warmup=5, measure=3)
                for b in all_benchmarks()]
    return [dataclasses.replace(get_benchmark(n), warmup=4, measure=2)
            for n in QUICK]


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run every workload (slow)")
    parser.add_argument("--forks", type=int, default=2)
    args = parser.parse_args(argv)
    benches = _benchmarks(args.full)

    section("Table 7 / Figures 2-4 — characterizing metrics")
    rows = profile_benchmarks(benches, measure=1)
    print(format_table7(rows))

    section("Figure 1 / Table 3 — PCA")
    print(format_loadings(pca_experiment(rows)))

    section("Figure 5 / Tables 12-15 — optimization impact")
    table = {}
    for name, code in HEADLINES.items():
        bench = dataclasses.replace(get_benchmark(name), warmup=5,
                                    measure=2)
        table.update(impact_table([bench], [code], forks=args.forks))
    print(format_table(table, sorted({c for cs in table.values()
                                      for c in (x.opt for x in cs)})))
    print("summary:", summarize(table))

    section("Figure 6 — Graal vs C2")
    rows6 = compare_suites(benches[:10], forks=args.forks)
    for row in rows6:
        print(row.format())
    print("summary:", cc_summarize(rows6))

    section("Table 4 / Table 5 — CK metrics and loaded classes")
    by_suite = {}
    for suite in ("renaissance", "dacapo", "scalabench", "specjvm"):
        suite_rows = ck_table([b for b in benches if b.suite == suite])
        if suite_rows:
            by_suite[suite] = suite_summary(suite_rows)
            print(f"Table 5 {suite}: {loaded_class_counts(suite_rows)}")
    print(format_table4(by_suite))

    section("Figure 7 — compiled code size")
    rows7 = code_size_table(benches, warmup=5, measure=1)
    print(suite_geomeans(rows7))

    section("Table 16 — compilation time")
    shares = compile_time_shares(
        [b for b in benches if b.suite == "renaissance"], warmup=5)
    print(format_table16(shares))

    section("Section 5.5 — guard counts (log-regression)")
    print(format_guard_table(guard_table(
        dataclasses.replace(get_benchmark("log-regression"), warmup=5,
                            measure=2))))

    section("Section 5.4 — hot methods (scrabble)")
    print(format_method_table(mhs_method_table(
        dataclasses.replace(get_benchmark("scrabble"), warmup=5,
                            measure=2))))


if __name__ == "__main__":
    main()
