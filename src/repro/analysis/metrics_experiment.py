"""Metric collection + PCA experiment (Table 7, Figures 1/2/3/4, Table 3).

Profiles every benchmark on the interpreter (the reproduction of the
paper's instrumented profiling runs), normalizes by reference cycles
(Section 3.2), and runs the Section 4 PCA over the standardized matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics import (
    METRIC_NAMES,
    SANITIZER_METRIC_NAMES,
    collect_checked_metrics,
    collect_metrics,
    normalize_metrics,
    normalize_sanitizer_metrics,
    run_pca,
)


@dataclass
class MetricsRow:
    benchmark: str
    suite: str
    raw: dict
    normalized: dict
    reference_cycles: int


def profile_benchmarks(benchmarks, *, warmup: int = 1,
                       measure: int | None = None) -> list[MetricsRow]:
    """Table 7: raw + normalized metrics for each benchmark."""
    rows = []
    for bench in benchmarks:
        raw, cycles = collect_metrics(bench, warmup=warmup, measure=measure)
        rows.append(MetricsRow(
            benchmark=bench.name,
            suite=bench.suite,
            raw=raw,
            normalized=normalize_metrics(raw, cycles),
            reference_cycles=cycles,
        ))
    return rows


def metric_series(rows: list[MetricsRow], metric: str) -> list[tuple]:
    """One Figure 2/3/4 bar series: (benchmark, suite, normalized rate)."""
    if metric not in METRIC_NAMES:
        raise ValueError(f"unknown metric {metric!r}")
    return [(r.benchmark, r.suite, r.normalized[metric]) for r in rows]


def pca_experiment(rows: list[MetricsRow]):
    """Figure 1 / Table 3: PCA over the normalized metric matrix."""
    return run_pca([r.normalized for r in rows],
                   [r.benchmark for r in rows],
                   [r.suite for r in rows])


def suite_spread(pca_result, pc: int) -> dict[str, float]:
    """Per-suite score spread (max - min) along one PC — the Figure 1
    "wide distribution along PC2" observation as a number."""
    out = {}
    for suite in sorted(set(pca_result.suites)):
        scores = pca_result.suite_scores(suite, pc)
        out[suite] = (max(scores) - min(scores)) if scores else 0.0
    return out


def format_table7(rows: list[MetricsRow]) -> str:
    header = f"{'benchmark':24s} {'suite':12s} " + " ".join(
        f"{m:>10s}" for m in METRIC_NAMES)
    lines = [header]
    for r in rows:
        cells = []
        for m in METRIC_NAMES:
            value = r.raw[m]
            cells.append(f"{value:10.2f}" if m == "cpu" else f"{value:10d}")
        lines.append(f"{r.benchmark:24s} {r.suite:12s} " + " ".join(cells))
    return "\n".join(lines)


def profile_checked(benchmarks, *, warmup: int = 1,
                    measure: int | None = None) -> list[MetricsRow]:
    """Sanitizer counters per benchmark, Table-7 style (checked runs)."""
    rows = []
    for bench in benchmarks:
        raw, cycles = collect_checked_metrics(
            bench, warmup=warmup, measure=measure)
        rows.append(MetricsRow(
            benchmark=bench.name,
            suite=bench.suite,
            raw=raw,
            normalized=normalize_sanitizer_metrics(raw, cycles),
            reference_cycles=cycles,
        ))
    return rows


def format_checked_table(rows: list[MetricsRow]) -> str:
    """The sanitizer analogue of Table 7: raw counter per benchmark."""
    header = f"{'benchmark':24s} {'suite':12s} " + " ".join(
        f"{m:>13s}" for m in SANITIZER_METRIC_NAMES)
    lines = [header]
    for r in rows:
        cells = []
        for m in SANITIZER_METRIC_NAMES:
            value = r.raw[m]
            cells.append(f"{value:13.2f}" if m == "mean_lockset"
                         else f"{value:13d}")
        lines.append(f"{r.benchmark:24s} {r.suite:12s} " + " ".join(cells))
    return "\n".join(lines)


def format_loadings(pca_result, components: int = 4) -> str:
    """Table 3: loadings per PC, sorted by |loading|."""
    table = pca_result.loading_table(components)
    lines = []
    for pc, column in enumerate(table, start=1):
        lines.append(f"PC{pc}:")
        for name, loading in column:
            lines.append(f"  {name:10s} {loading:+.2f}")
    lines.append(f"variance in first {components} PCs: "
                 f"{pca_result.variance_fraction(components) * 100:.0f}%")
    return "\n".join(lines)
