"""Guard-execution experiment (the Section 5.5 table).

Runs a benchmark with speculative guard motion enabled and disabled and
reports dynamic guard executions by kind — the paper's table showing the
83% total reduction and the shift from plain to "Speculative" guard
variants on log-regression.
"""

from __future__ import annotations

from repro.harness.core import Runner
from repro.jit.pipeline import graal_config


def guard_counts(benchmark, *, with_gm: bool = True, warmup: int = 5,
                 measure: int = 2) -> dict[str, int]:
    """Steady-state guard executions by kind label."""
    config = graal_config() if with_gm else graal_config().without("GM")
    runner = Runner(benchmark, jit=config)
    result = runner.run(warmup=warmup, measure=measure)
    return dict(result.counters.get("guard_kinds", {}))


def guard_table(benchmark, **kwargs) -> dict:
    """Both halves of the Section 5.5 table plus the reduction factor."""
    without = guard_counts(benchmark, with_gm=False, **kwargs)
    with_gm = guard_counts(benchmark, with_gm=True, **kwargs)
    total_without = sum(without.values())
    total_with = sum(with_gm.values())
    reduction = (1 - total_with / total_without) if total_without else 0.0
    return {
        "without": without,
        "with": with_gm,
        "total_without": total_without,
        "total_with": total_with,
        "reduction": reduction,
    }


def format_guard_table(table: dict) -> str:
    lines = ["Without speculative guard motion:"]
    for kind, count in sorted(table["without"].items(), key=lambda kv: kv[1]):
        share = count / table["total_without"] * 100 \
            if table["total_without"] else 0
        lines.append(f"  {count:>12,} {share:3.0f}%  {kind}")
    lines.append(f"  {table['total_without']:>12,} 100%  Total")
    lines.append("With speculative guard motion:")
    for kind, count in sorted(table["with"].items(), key=lambda kv: kv[1]):
        share = count / table["total_with"] * 100 if table["total_with"] else 0
        lines.append(f"  {count:>12,} {share:3.0f}%  {kind}")
    lines.append(f"  {table['total_with']:>12,} 100%  Total")
    lines.append(f"reduction: {table['reduction'] * 100:.0f}%")
    return "\n".join(lines)
