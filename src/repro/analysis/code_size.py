"""Compiled-code size experiment (Figure 7).

Runs each benchmark long enough for tier-up to settle, then reads the
JIT's code cache: total compiled (hot) code size and hot-method count,
summarized per suite by geometric mean — the two panels of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.core import Runner
from repro.harness.stats import geomean


@dataclass
class CodeSizeRow:
    benchmark: str
    suite: str
    code_bytes: int
    hot_methods: int


def code_size_for(benchmark, *, warmup: int = 6, measure: int = 2
                  ) -> CodeSizeRow:
    runner = Runner(benchmark, jit="graal")
    result = runner.run(warmup=warmup, measure=measure)
    jit = result.vm.jit
    return CodeSizeRow(
        benchmark=benchmark.name,
        suite=benchmark.suite,
        code_bytes=jit.code_size_bytes(),
        hot_methods=jit.hot_method_count(),
    )


def code_size_table(benchmarks, **kwargs) -> list[CodeSizeRow]:
    return [code_size_for(b, **kwargs) for b in benchmarks]


def suite_geomeans(rows: list[CodeSizeRow]) -> dict[str, dict]:
    """Figure 7's per-suite geometric means."""
    out: dict[str, dict] = {}
    for suite in sorted({r.suite for r in rows}):
        mine = [r for r in rows if r.suite == suite]
        out[suite] = {
            "geomean_code_bytes": geomean([r.code_bytes for r in mine
                                           if r.code_bytes > 0]),
            "geomean_hot_methods": geomean([r.hot_methods for r in mine
                                            if r.hot_methods > 0]),
            "benchmarks": len(mine),
        }
    return out
