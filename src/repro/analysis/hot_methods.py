"""Per-method hot-method profile (the Section 5.4 scrabble table).

Attributes simulated cycles to the method whose frame is executing —
the reproduction of the Oracle Developer Studio per-method profile the
paper uses to show where method-handle simplification saves time.

The profiler wraps the interpreter/machine frame executors for the
duration of the run (a context-managed hook, restored afterwards).
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager

import repro.jit.machine as _machine_mod
import repro.jvm.interpreter as _interp_mod
from repro.harness.core import Runner
from repro.harness.plugins import HarnessPlugin
from repro.jit.pipeline import graal_config


@contextmanager
def method_profiler(profile: Counter):
    """Attribute reference cycles to the executing frame's method."""
    orig_machine = _machine_mod.Machine.run_frame
    orig_interp = _interp_mod.Interpreter.run_frame

    def machine_run(self, thread, frame):
        before = self.vm.counters.reference_cycles
        orig_machine(self, thread, frame)
        profile[frame.code.method.qualified] += \
            self.vm.counters.reference_cycles - before

    def interp_run(self, thread, frame):
        before = self.vm.counters.reference_cycles
        orig_interp(self, thread, frame)
        profile[frame.method.qualified] += \
            self.vm.counters.reference_cycles - before

    _machine_mod.Machine.run_frame = machine_run
    _interp_mod.Interpreter.run_frame = interp_run
    try:
        yield profile
    finally:
        _machine_mod.Machine.run_frame = orig_machine
        _interp_mod.Interpreter.run_frame = orig_interp


class _SteadyStateReset(HarnessPlugin):
    def __init__(self, profile: Counter) -> None:
        self.profile = profile

    def before_iteration(self, vm, benchmark, index, warmup) -> None:
        if not warmup and index == 0:
            self.profile.clear()


def hot_methods(benchmark, *, with_mhs: bool = True, warmup: int = 5,
                measure: int = 2, top: int = 8) -> list[tuple[str, int]]:
    """Top methods by steady-state cycles, with or without MHS."""
    config = graal_config() if with_mhs else graal_config().without("MHS")
    profile: Counter = Counter()
    with method_profiler(profile):
        runner = Runner(benchmark, jit=config,
                        plugins=(_SteadyStateReset(profile),))
        runner.run(warmup=warmup, measure=measure)
    return profile.most_common(top)


def mhs_method_table(benchmark, **kwargs) -> dict:
    """The Section 5.4 with/without comparison, plus totals."""
    with_rows = dict(hot_methods(benchmark, with_mhs=True, **kwargs))
    without_rows = dict(hot_methods(benchmark, with_mhs=False, **kwargs))
    names = sorted(set(with_rows) | set(without_rows),
                   key=lambda n: -(without_rows.get(n, 0)))
    return {
        "methods": [(n, with_rows.get(n, 0), without_rows.get(n, 0))
                    for n in names],
        "total_with": sum(with_rows.values()),
        "total_without": sum(without_rows.values()),
    }


def format_method_table(table: dict) -> str:
    lines = [f"{'with':>14s} {'without':>14s}  compilation unit"]
    lines.append(f"{table['total_with']:>14,} {table['total_without']:>14,}"
                 "  <Total>")
    for name, with_cycles, without_cycles in table["methods"]:
        lines.append(f"{with_cycles:>14,} {without_cycles:>14,}  {name}")
    return "\n".join(lines)
