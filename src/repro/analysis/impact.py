"""Optimization-impact experiment (Figure 5, Tables 12–15).

Methodology follows paper Section 6: the impact of an optimization on a
benchmark is the relative change in execution time when the optimization
is *selectively disabled*, measured against the all-on baseline, with
Welch's t-test on per-fork means deciding significance (α = 0.01) and
winsorized iteration times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.core import GuestBenchmark
from repro.harness.jmh import run_jmh
from repro.harness.stats import mean, relative_impact, welch_t_test, winsorize
from repro.jit.pipeline import OPT_CODES, graal_config

ALPHA = 0.01


@dataclass
class ImpactCell:
    """One (benchmark, optimization) entry of Tables 12–15."""

    benchmark: str
    opt: str
    impact: float       # positive => disabling slows the benchmark down
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < ALPHA

    def format(self) -> str:
        return f"{self.impact * 100:+5.1f}% (p={self.p_value:4.2f})"


def measure_impact(benchmark: GuestBenchmark, codes=OPT_CODES, *,
                   forks: int = 3, warmup: int | None = None,
                   measure: int | None = None,
                   base_config=None) -> list[ImpactCell]:
    """Impact of each optimization in ``codes`` on ``benchmark``."""
    config = base_config or graal_config()
    baseline = run_jmh(benchmark, jit=config, forks=forks,
                       warmup=warmup, measure=measure)
    base_walls = winsorize(baseline.walls)
    cells = []
    for code in codes:
        disabled = run_jmh(benchmark, jit=config.without(code), forks=forks,
                           warmup=warmup, measure=measure)
        walls = winsorize(disabled.walls)
        cells.append(ImpactCell(
            benchmark=benchmark.name,
            opt=code,
            impact=relative_impact(walls, base_walls),
            p_value=welch_t_test(disabled.fork_means, baseline.fork_means),
        ))
    return cells


def impact_table(benchmarks, codes=OPT_CODES, *, forks: int = 3,
                 warmup: int | None = None,
                 measure: int | None = None) -> dict[str, list[ImpactCell]]:
    """Tables 12–15 rows for ``benchmarks``."""
    return {b.name: measure_impact(b, codes, forks=forks, warmup=warmup,
                                   measure=measure)
            for b in benchmarks}


def summarize(table: dict[str, list[ImpactCell]]) -> dict:
    """Per-optimization summary used for the Figure 5 headline claims:
    how many optimizations reach ≥5% significant impact on some
    benchmark, and the median significant impact."""
    per_opt_max: dict[str, float] = {}
    significant_impacts: list[float] = []
    for cells in table.values():
        for cell in cells:
            if cell.significant:
                significant_impacts.append(cell.impact)
                prev = per_opt_max.get(cell.opt, float("-inf"))
                per_opt_max[cell.opt] = max(prev, cell.impact)
    over_5 = sorted(code for code, imp in per_opt_max.items()
                    if imp >= 0.05)
    positives = sorted(i for i in significant_impacts if i > 0)
    median = positives[len(positives) // 2] if positives else 0.0
    return {
        "opts_with_5pct": over_5,
        "count_over_5pct": len(over_5),
        "median_significant_impact": median,
        "per_opt_max": per_opt_max,
    }


def format_table(table: dict[str, list[ImpactCell]], codes=OPT_CODES) -> str:
    lines = ["benchmark             " + " ".join(f"{c:>15s}" for c in codes)]
    for name, cells in table.items():
        by_code = {c.opt: c for c in cells}
        row = f"{name:22s}"
        for code in codes:
            cell = by_code.get(code)
            if cell is None:
                row += " " * 16
                continue
            mark = "*" if cell.significant else " "
            row += f" {cell.impact * 100:+6.1f}%{mark} p={cell.p_value:4.2f}"
        lines.append(row)
    return "\n".join(lines)
