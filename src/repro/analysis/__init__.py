"""Experiment drivers: one module per paper table/figure.

===================  ====================================================
module               regenerates
===================  ====================================================
metrics_experiment   Table 7 (raw metrics), Figures 2/3/4 (normalized
                     rates), Figure 1 / Table 3 (PCA)
impact               Figure 5 and Tables 12–15 (optimization impact with
                     Welch significance)
compiler_compare     Figure 6 (Graal vs C2 speedups, 99% CI)
ck_experiment        Tables 4/5 and 8–11 (CK metrics, loaded classes)
code_size            Figure 7 (compiled code size, hot method count)
compile_time         Table 16 (per-optimization compilation time)
guard_counts         Section 5.5 guard-execution table
hot_methods          Section 5.4 per-method MHS timing table
===================  ====================================================
"""
