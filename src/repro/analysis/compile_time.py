"""Compilation-time experiment (Table 16).

The JIT accounts simulated compiler-thread cycles per phase
(:class:`repro.jit.jit.CompileStats`).  Table 16 reports, per
optimization, the relative reduction in compiler-thread time when the
optimization is disabled — equivalently, the fraction of compile time
the phase is responsible for, aggregated over all benchmarks.
"""

from __future__ import annotations

from repro.harness.core import Runner
from repro.jit.jit import PHASE_TO_OPT
from repro.jit.pipeline import OPT_CODES, graal_config


def compile_time_shares(benchmarks, *, warmup: int = 5) -> dict[str, float]:
    """Fraction of total compiler-thread cycles attributable to each
    optimization, summed over ``benchmarks``."""
    per_opt = {code: 0 for code in OPT_CODES}
    total = 0
    for bench in benchmarks:
        runner = Runner(bench, jit=graal_config())
        result = runner.run(warmup=warmup, measure=1)
        stats = result.vm.jit.stats
        total += stats.total_cycles
        for code in OPT_CODES:
            per_opt[code] += stats.opt_cycles(code)
    if total == 0:
        return {code: 0.0 for code in OPT_CODES}
    return {code: cycles / total for code, cycles in per_opt.items()}


def format_table16(shares: dict[str, float]) -> str:
    from repro.jit.pipeline import OPT_NAMES

    lines = [f"{'optimization':42s} compilation time share"]
    for code, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        lines.append(f"{OPT_NAMES[code]:42s} {share * 100:5.1f}%")
    return "\n".join(lines)
