"""CK software-complexity experiment (Tables 4/5 and 8–11).

Runs each benchmark briefly (interpreter is enough — class loading is
what matters), then computes the Chidamber–Kemerer metrics over the
classes the VM actually loaded, exactly as the paper's JVMTI-agent +
ckjm pipeline does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckmetrics import CK_METRIC_NAMES, ck_for_classes, suite_ck_summary
from repro.harness.core import Runner


@dataclass
class CkRow:
    benchmark: str
    suite: str
    metrics: dict          # {"sum": {...}, "avg": {...}, "classes": n}
    loaded: set


def ck_for_benchmark(benchmark) -> CkRow:
    runner = Runner(benchmark, jit=None)
    result = runner.run(warmup=0, measure=1)
    vm = result.vm
    classes = vm.pool.loaded_classes()
    return CkRow(
        benchmark=benchmark.name,
        suite=benchmark.suite,
        metrics=ck_for_classes(classes),
        loaded={c.name for c in classes},
    )


def ck_table(benchmarks) -> list[CkRow]:
    return [ck_for_benchmark(b) for b in benchmarks]


def suite_summary(rows: list[CkRow]) -> dict:
    """Table 4: min/max/geomean of sums and averages per suite."""
    return suite_ck_summary([r.metrics for r in rows])


def loaded_class_counts(rows: list[CkRow]) -> dict:
    """Table 5: sum of all loaded classes vs unique loaded classes."""
    all_count = sum(len(r.loaded) for r in rows)
    unique: set = set()
    for r in rows:
        unique |= r.loaded
    return {"sum_all": all_count, "sum_unique": len(unique)}


def format_table4(summaries: dict[str, dict]) -> str:
    lines = []
    for suite, summary in summaries.items():
        lines.append(f"{suite}:")
        for kind in ("sum", "avg"):
            for stat in ("min", "max", "geomean"):
                cells = " ".join(
                    f"{summary[kind][name][stat]:>10.2f}"
                    for name in CK_METRIC_NAMES)
                lines.append(f"  {stat}-{kind:3s} {cells}")
    return "\n".join(lines)
