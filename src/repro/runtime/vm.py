"""The virtual machine facade.

A :class:`VM` owns one complete simulated JVM: class pool, heap, cache
model, scheduler, interpreter, and (optionally) a JIT compiler.  Typical
use::

    from repro.runtime import VM
    from repro.lang import compile_program

    program = compile_program(source_text)
    vm = VM(jit="graal")
    vm.load(program)
    result = vm.invoke("Main.run", [100])

``jit`` may be ``None`` (pure interpretation — used for metric profiling,
like the paper's instrumented runs), ``"graal"`` (the full pipeline with
all seven paper optimizations), ``"c2"`` (the classic baseline pipeline),
or an explicit :class:`repro.jit.pipeline.JitConfig` for selective
enable/disable experiments (Figure 5).
"""

from __future__ import annotations

from repro.errors import LinkError, VMError
from repro.jvm import intrinsics
from repro.jvm.cache import CacheModel
from repro.jvm.classfile import ClassPool, JClass, JMethod
from repro.jvm.counters import Counters
from repro.jvm.heap import Heap
from repro.jvm.interpreter import Frame, Interpreter
from repro.jvm.scheduler import RUNNABLE, JThread, Scheduler


#: Arities of the builtin native classes registered by every VM.
_BUILTIN_NATIVES: dict[str, list[tuple[str, int]]] = {
    "Sys": [("print", 1), ("println", 1), ("identityHash", 1), ("cores", 0),
            ("hashOf", 1)],
    "Math": [
        ("sqrt", 1), ("exp", 1), ("log", 1), ("pow", 2),
        ("sin", 1), ("cos", 1), ("floor", 1),
    ],
    "Str": [
        ("len", 1), ("charAt", 2), ("sub", 3), ("indexOf", 2),
        ("fromChar", 1), ("ofInt", 1), ("hash", 1), ("cmp", 2),
        ("upper", 1), ("lower", 1), ("parseInt", 1),
    ],
    "Arrays": [("copy", 5)],
}


class VM:
    """One simulated JVM instance."""

    def __init__(
        self,
        *,
        cores: int = 8,
        quantum: int = 5000,
        schedule_seed: int = 0,
        jit: object = "graal",
        engine: str = "threaded",
        faults: object = None,
        sanitize: object = None,
        trace: object = None,
        verify_ir: bool = False,
    ) -> None:
        self.counters = Counters()
        # Compiler verification (repro.sanitize.irverify/blockverify):
        # when on, every JIT pipeline phase and every emitted tier-1
        # superblock is statically re-checked; violations raise instead
        # of silently falling back.  Stats live outside Counters — they
        # are host-side observability and must not perturb the
        # byte-identity fingerprint.
        self.verify_ir = bool(verify_ir)
        self.irverify_stats: dict[str, int] = {
            "graphs": 0, "phase_checks": 0, "issues": 0, "blocks": 0,
        }
        # Flight recorder (repro.trace); installed below once the
        # subsystems it hooks exist.  Every hot-path hook is a single
        # None check while this stays None.
        self.trace = None
        self.pool = ClassPool()
        self.heap = Heap(self.counters)
        self.cache = CacheModel(cores, self.counters)
        self.scheduler = Scheduler(cores=cores, quantum=quantum, seed=schedule_seed)
        self.scheduler.executor = self._execute_slice
        # Host execution engine.  "threaded" (default) is the
        # threaded-code engine (repro.jvm.threaded); "reference" is the
        # original elif dispatcher, kept as the equivalence oracle;
        # "tier1" (opt-in) adds compiled superblock closures for hot
        # methods on top of the threaded tier (repro.jvm.tier1);
        # "tier2" (opt-in) additionally host-compiles the guest JIT's
        # optimized machine code (repro.jit.emit2 via repro.jvm.tier2).
        # All four produce byte-identical counters and schedules.
        if engine == "threaded":
            from repro.jvm.threaded import ThreadedInterpreter

            self.interpreter = ThreadedInterpreter(self)
        elif engine == "tier1":
            from repro.jvm.tier1 import Tier1Interpreter

            self.interpreter = Tier1Interpreter(self)
        elif engine == "tier2":
            from repro.jvm.tier2 import Tier2Interpreter

            self.interpreter = Tier2Interpreter(self)
        elif engine == "reference":
            self.interpreter = Interpreter(self)
        else:
            raise VMError(f"bad engine spec {engine!r}")
        self.engine = engine
        self.stdout: list[str] = []
        self._loaded_marks: set[str] = set()
        self._class_cache: dict[str, JClass] = {}
        self._static_cache: dict[tuple[str, str], JMethod] = {}
        self._bootstrap_builtins()
        self.jit = self._make_jit(jit)
        self.machine = self.jit.machine if self.jit is not None else None
        if engine == "tier2" and self.jit is not None:
            # Swap the interpretive machine-frame executor for the
            # tier-2 one (same CompiledCode, host-compiled closures on
            # top); the interpretive Machine stays reachable through
            # Machine.run_frame as the byte-identity oracle and the
            # deopt fallback.
            from repro.jit.machine import Tier2Machine

            self.machine = Tier2Machine(self)
            self.jit.machine = self.machine
        # Deterministic fault injection (repro.faults).  ``faults`` is a
        # FaultPlan or a prepared FaultInjector; hooks are installed
        # only for the fault kinds the plan actually uses, so the hot
        # call path stays a single None check when no plan is active.
        self.faults = self._make_injector(faults)
        self._fault_calls = (
            self.faults is not None and self.faults.wants_calls)
        # Happens-before race sanitizer (repro.sanitize).  ``sanitize``
        # is True, a SanitizerConfig, or a prepared RaceSanitizer;
        # attaching one forces interpreter-only execution (the JIT's
        # machine code has no access hooks).
        self.sanitizer = None
        if sanitize is not None and sanitize is not False:
            self._make_sanitizer(sanitize)
        # Flight recorder (repro.trace).  ``trace`` is True (defaults),
        # a TraceConfig, or a prepared FlightRecorder; events cover the
        # whole VM lifetime, class initializers included.
        if trace is not None and trace is not False:
            self._make_trace(trace)

    def _make_trace(self, trace) -> None:
        from repro.trace.recorder import FlightRecorder, TraceConfig

        if trace is True:
            trace = FlightRecorder()
        elif isinstance(trace, TraceConfig):
            trace = FlightRecorder(trace)
        if not isinstance(trace, FlightRecorder):
            raise VMError(f"bad trace spec {trace!r}")
        trace.attach(self)

    def _make_sanitizer(self, sanitize) -> None:
        from repro.sanitize.hb import RaceSanitizer, SanitizerConfig

        if sanitize is True:
            sanitize = RaceSanitizer()
        elif isinstance(sanitize, SanitizerConfig):
            sanitize = RaceSanitizer(sanitize)
        if not isinstance(sanitize, RaceSanitizer):
            raise VMError(f"bad sanitize spec {sanitize!r}")
        sanitize.attach(self)

    def _make_injector(self, faults):
        if faults is None:
            return None
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        if not isinstance(faults, FaultInjector):
            raise VMError(f"bad faults spec {faults!r}")
        faults.attach(self)
        return faults

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def _bootstrap_builtins(self) -> None:
        function_cls = JClass("Function")
        self.pool.define(function_cls)
        for owner, methods in _BUILTIN_NATIVES.items():
            cls = JClass(owner)
            for name, arity in methods:
                cls.add_method(JMethod(name, owner, arity, static=True, native=True))
            self.pool.define(cls)

    def _make_jit(self, jit):
        if jit is None:
            return None
        from repro.jit.jit import JitCompiler
        from repro.jit.pipeline import JitConfig, c2_config, graal_config

        if jit == "graal":
            config = graal_config()
        elif jit == "c2":
            config = c2_config()
        elif isinstance(jit, JitConfig):
            config = jit
        else:
            raise VMError(f"bad jit spec {jit!r}")
        return JitCompiler(self, config)

    # ------------------------------------------------------------------
    # Program loading.
    # ------------------------------------------------------------------
    def load(self, program) -> None:
        """Define and link all classes of a compiled guest program.

        A Program may be loaded into several VMs over its lifetime (the
        experiment harness reuses compiled guest programs), so all
        per-run mutable state on the classes — JIT counters, compiled
        code, profiles, statics, loaded flags — is reset here.
        """
        for cls in program.classes:
            self.pool.define(cls)
            cls.loaded = False
            for field in cls.fields.values():
                if field.static:
                    cls.static_values[field.name] = 0
            for method in cls.methods.values():
                method.invocation_count = 0
                method.backedge_count = 0
                method.call_profile = None
                method.compiled = None
                method.compile_failures = 0
                method.disabled_speculations.clear()
        self.pool.link_all()
        for cls in program.classes:
            if "__clinit__" in cls.methods:
                self.invoke(cls.methods["__clinit__"], [], name=f"clinit-{cls.name}")

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------
    def resolve_class(self, name: str) -> JClass:
        cls = self._class_cache.get(name)
        if cls is None:
            cls = self.pool.get(name)
            self._class_cache[name] = cls
        if name not in self._loaded_marks:
            self._loaded_marks.add(name)
            cls.loaded = True
        return cls

    def resolve_static(self, owner: str, name: str) -> JMethod:
        key = (owner, name)
        method = self._static_cache.get(key)
        if method is None:
            method = self.resolve_class(owner).resolve_method(name)
            self._static_cache[key] = method
        return method

    # ------------------------------------------------------------------
    # Calls and threads.
    # ------------------------------------------------------------------
    def charge(self, thread: JThread, cycles: int) -> None:
        thread.budget -= cycles
        self.counters.reference_cycles += cycles

    def call(self, thread: JThread, method: JMethod, args: list) -> None:
        """Invoke ``method``: run a native, or push a frame (JIT-aware)."""
        if self._fault_calls:
            self.faults.on_call(self, thread, method)
        if method.native:
            fn = intrinsics.lookup(method.owner, method.name)
            self.charge(thread, intrinsics.NATIVE_BASE_COST)
            result = fn(self, thread, args)
            thread.frames[-1].receive_result(
                None if result is intrinsics.VOID else result)
            return
        if method.abstract:
            raise LinkError(f"invoke of abstract method {method.qualified}")
        method.invocation_count += 1
        jit = self.jit
        if jit is not None:
            if method.compiled is None:
                jit.on_invoke(method)
            code = method.compiled
            if code is not None:
                thread.frames.append(self.machine.new_frame(code, args))
                return
        thread.frames.append(Frame(method, args))

    def on_backedge(self, method: JMethod) -> None:
        if self.jit is not None and method.compiled is None:
            self.jit.on_backedge(method)

    def make_function(self, target: JMethod, captured: list):
        """Allocate a closure object (the INVOKEDYNAMIC bootstrap result)."""
        obj = self.heap.new_object(self.resolve_class("Function"))
        obj.meta = (target, tuple(captured))
        return obj

    def guest_thread_of(self, thread_obj) -> JThread:
        if thread_obj is None or thread_obj.meta is None:
            raise VMError("unpark of a thread that was never started")
        return thread_obj.meta

    def spawn_guest_thread(self, thread_obj, function_obj, *, name: str,
                           daemon: bool,
                           parent: JThread | None = None) -> JThread:
        """Start a guest ``Thread`` whose body is a closure object."""
        target, captured = function_obj.meta
        jthread = JThread(name, daemon=daemon)
        jthread.thread_obj = thread_obj
        thread_obj.meta = jthread
        self._push_entry_frame(jthread, target, list(captured))
        self.scheduler.spawn(jthread, parent=parent)
        return jthread

    def _push_entry_frame(self, thread: JThread, method: JMethod, args: list) -> None:
        if method.native:
            raise VMError("cannot start a thread on a native method")
        method.invocation_count += 1
        if self.jit is not None:
            if method.compiled is None:
                self.jit.on_invoke(method)
            if method.compiled is not None:
                thread.frames.append(
                    self.machine.new_frame(method.compiled, args))
                return
        thread.frames.append(Frame(method, args))

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def _execute_slice(self, thread: JThread) -> int:
        quantum = self.scheduler.quantum
        thread.budget = quantum
        frames = thread.frames
        while thread.budget > 0 and thread.state == RUNNABLE and frames:
            top = frames[-1]
            if type(top) is Frame:
                self.interpreter.run_frame(thread, top)
            else:
                self.machine.run_frame(thread, top)
        return max(1, quantum - thread.budget)

    def invoke(self, method, args: list | None = None, *, name: str = "main"):
        """Run ``method`` on a fresh non-daemon thread to completion.

        ``method`` is a :class:`JMethod` or a ``"Class.method"`` string.
        Returns the guest return value (or ``None`` for void).
        """
        if isinstance(method, str):
            owner, _, mname = method.partition(".")
            method = self.resolve_static(owner, mname)
        thread = JThread(name)
        self._push_entry_frame(thread, method, list(args or []))
        self.scheduler.spawn(thread)
        self.scheduler.run()
        if thread.fault is not None:
            # The entry thread died without unwinding through the
            # executor (e.g. killed by fault injection): surface its
            # fault instead of silently returning None.
            raise thread.fault
        return thread.result

    # ------------------------------------------------------------------
    # Measurement helpers.
    # ------------------------------------------------------------------
    def timing_snapshot(self) -> dict:
        """Wall clock + work snapshot for interval measurements."""
        return {
            "clock": self.scheduler.clock,
            "work": self.counters.reference_cycles,
            "busy": self.scheduler.busy_core_slices,
        }

    def interval_stats(self, before: dict) -> dict:
        """Wall time, work and CPU utilization since ``before``."""
        wall = self.scheduler.clock - before["clock"]
        work = self.counters.reference_cycles - before["work"]
        busy = self.scheduler.busy_core_slices - before["busy"]
        cpu = busy / (self.scheduler.cores * wall) if wall else 0.0
        return {"wall": wall, "work": work, "cpu": min(1.0, cpu)}

    def loaded_class_names(self) -> set[str]:
        return {c.name for c in self.pool.loaded_classes()}
