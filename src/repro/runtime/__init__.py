"""The VM facade — the package's main entry point.

:class:`repro.runtime.vm.VM` wires the substrate (heap, scheduler,
interpreter, cache model) to the JIT and exposes the public API used by
examples, the harness, and the suites.
"""

from repro.runtime.vm import VM

__all__ = ["VM"]
