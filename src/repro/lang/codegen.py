"""Bytecode code generation for the JL guest language.

Translates the parser's AST into :class:`~repro.jvm.classfile.JClass` /
:class:`~repro.jvm.classfile.JMethod` objects containing simulated-JVM
bytecode.  Notable lowerings:

- **lambdas** are lifted into synthetic static methods ``lambda$N`` on the
  enclosing class; the expression compiles to ``INVOKEDYNAMIC`` which
  captures free variables by value (Java's effectively-final semantics),
- **closure calls** ``f(a, b)`` compile to ``INVOKEHANDLE`` (the
  polymorphic ``MethodHandle.invoke`` the paper's MHS optimization
  targets),
- **synchronized blocks/methods** compile to paired
  ``MONITORENTER``/``MONITOREXIT`` with a hidden local holding the lock;
  ``break``/``continue``/``return`` unwind the monitors they cross,
- **constructors** (``def init``) are invoked via ``NEW; DUP;
  INVOKESPECIAL``.

Codegen also records the static call/field-access sets used by the
Chidamber–Kemerer metrics (Section 7.1 of the paper).
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang import ast_nodes as A
from repro.lang.parser import BUILTINS, _BUILTIN_ARITY, parse
from repro.jvm.bytecode import Instr, Op
from repro.jvm.classfile import JClass, JField, JMethod

#: Classes every VM defines natively (see repro.runtime.vm).
BUILTIN_CLASSES = frozenset({
    "Object", "Function", "Sys", "Math", "Str", "Arrays",
})


class Program:
    """A compiled guest program: the classes to load into a VM."""

    def __init__(self, classes: list[JClass]) -> None:
        self.classes = classes
        self.by_name = {c.name: c for c in classes}

    def __repr__(self) -> str:
        return f"<Program {len(self.classes)} classes>"


def compile_program(*sources: str, include_stdlib: bool = True) -> Program:
    """Compile JL ``sources`` (plus the guest stdlib) into a Program."""
    texts: list[str] = []
    if include_stdlib:
        from repro.lang.stdlib import STDLIB_SOURCES
        texts.extend(STDLIB_SOURCES)
    texts.extend(sources)
    decls: list[A.ClassDecl] = []
    for text in texts:
        decls.extend(parse(text))
    return _CodegenUnit(decls).compile()


# ----------------------------------------------------------------------
# Free-variable analysis for lambda capture.
# ----------------------------------------------------------------------

def _free_vars(stmts: list[A.Stmt], bound: set[str], class_names: set[str],
               out: list[str], seen: set[str]) -> None:
    """Collect free names of ``stmts`` in first-use order into ``out``.

    ``this`` is represented by the pseudo-name ``"this"``.  Names bound by
    ``var`` declarations become bound for subsequent statements.
    """
    local_bound = set(bound)

    def walk_expr(expr: A.Expr) -> None:
        if isinstance(expr, A.Name):
            name = expr.ident
            if (name not in local_bound and name not in class_names
                    and name not in BUILTINS and name not in seen):
                seen.add(name)
                out.append(name)
        elif isinstance(expr, A.This):
            if "this" not in local_bound and "this" not in seen:
                seen.add("this")
                out.append("this")
        elif isinstance(expr, A.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, (A.Binary, A.ShortCircuit)):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, A.FieldAccess):
            walk_expr(expr.obj)
        elif isinstance(expr, A.Index):
            walk_expr(expr.array)
            walk_expr(expr.index)
        elif isinstance(expr, A.Call):
            walk_expr(expr.callee)
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, A.New):
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, A.NewArray):
            walk_expr(expr.length)
        elif isinstance(expr, A.InstanceOf):
            walk_expr(expr.obj)
        elif isinstance(expr, A.Lambda):
            inner_bound = local_bound | set(expr.params)
            _free_vars(expr.body, inner_bound, class_names, out, seen)
        # Literals and StaticAccess have no free names.

    def walk_stmt(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDecl):
            walk_expr(stmt.init)
            local_bound.add(stmt.name)
        elif isinstance(stmt, A.Assign):
            walk_expr(stmt.value)
            walk_expr(stmt.target)
        elif isinstance(stmt, A.ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, A.If):
            walk_expr(stmt.cond)
            for s in stmt.then_body:
                walk_stmt(s)
            for s in stmt.else_body:
                walk_stmt(s)
        elif isinstance(stmt, A.While):
            walk_expr(stmt.cond)
            for s in stmt.body:
                walk_stmt(s)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                walk_stmt(stmt.init)
            if stmt.cond is not None:
                walk_expr(stmt.cond)
            for s in stmt.body:
                walk_stmt(s)
            if stmt.step is not None:
                walk_stmt(stmt.step)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                walk_expr(stmt.value)
        elif isinstance(stmt, A.Synchronized):
            walk_expr(stmt.lock)
            for s in stmt.body:
                walk_stmt(s)
        # Break/Continue: nothing.

    for stmt in stmts:
        walk_stmt(stmt)


# ----------------------------------------------------------------------
# The compilation unit.
# ----------------------------------------------------------------------

class _CodegenUnit:
    def __init__(self, decls: list[A.ClassDecl]) -> None:
        self.decls = decls
        self.class_names = BUILTIN_CLASSES | {d.name for d in decls}
        dup = [d.name for d in decls if d.name in BUILTIN_CLASSES]
        if dup:
            raise CompileError(f"classes shadow builtins: {dup}")
        if len({d.name for d in decls}) != len(decls):
            names = [d.name for d in decls]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise CompileError(f"duplicate class declarations: {dupes}")

    def compile(self) -> Program:
        classes = []
        for decl in self.decls:
            classes.append(self._compile_class(decl))
        return Program(classes)

    def _compile_class(self, decl: A.ClassDecl) -> JClass:
        jclass = JClass(decl.name, decl.super_name,
                        interfaces=tuple(decl.interfaces),
                        is_interface=decl.is_interface)
        jclass.referenced = set()
        if decl.super_name and decl.super_name != "Object":
            jclass.referenced.add(decl.super_name)
        jclass.referenced.update(decl.interfaces)

        static_inits: list[tuple[str, A.Expr]] = []
        for fld in decl.fields:
            jclass.add_field(JField(fld.name, static=fld.static))
            if fld.static and fld.init is not None:
                static_inits.append((fld.name, fld.init))

        has_init = any(m.name == "init" and not m.static for m in decl.methods)
        if not has_init and not decl.is_interface:
            jclass.add_method(JMethod("init", decl.name, 0,
                                      [Instr(Op.RETURN)], max_locals=1))

        for mdecl in decl.methods:
            method = self._compile_method(jclass, mdecl)
            jclass.add_method(method)

        if static_inits:
            gen = _MethodCodegen(self, jclass, static=True, params=[])
            for name, init in static_inits:
                gen.expr(init)
                gen.emit(Op.PUTSTATIC, (decl.name, name))
            gen.emit(Op.RETURN)
            clinit = JMethod("__clinit__", decl.name, 0, gen.code,
                             max_locals=gen.next_slot, static=True)
            jclass.add_method(clinit)
        return jclass

    def _compile_method(self, jclass: JClass, mdecl: A.MethodDecl) -> JMethod:
        if mdecl.native or mdecl.body is None:
            method = JMethod(mdecl.name, jclass.name, len(mdecl.params),
                             static=mdecl.static, native=mdecl.native,
                             abstract=not mdecl.native)
            return method
        if mdecl.synchronized and mdecl.static:
            raise CompileError(
                f"{jclass.name}.{mdecl.name}: static synchronized methods "
                "are not supported; synchronize on an explicit lock object")
        gen = _MethodCodegen(self, jclass, static=mdecl.static,
                             params=mdecl.params)
        body = mdecl.body
        if mdecl.synchronized:
            body = [A.Synchronized(A.This(mdecl.line), body, mdecl.line)]
        for stmt in body:
            gen.stmt(stmt)
        gen.emit(Op.RETURN)
        method = JMethod(mdecl.name, jclass.name, len(mdecl.params), gen.code,
                         max_locals=gen.next_slot, static=mdecl.static,
                         synchronized=mdecl.synchronized)
        method.accessed_fields = gen.accessed_fields
        method.called = gen.called
        method.source_lines = max(1, mdecl.end_line - mdecl.line + 1)
        return method


class _MethodCodegen:
    """Bytecode emitter for one method body (and its lifted lambdas)."""

    def __init__(self, unit: _CodegenUnit, jclass: JClass, *, static: bool,
                 params: list[str], capture_env: list[str] | None = None) -> None:
        self.unit = unit
        self.jclass = jclass
        self.static = static
        self.code: list[Instr] = []
        self.locals: dict[str, int] = {}
        self.next_slot = 0
        self.accessed_fields: set[tuple[str, str]] = set()
        self.called: set[tuple[str | None, str]] = set()
        # Block scoping: names declared inside a block go out of scope at
        # its end (slots are not reused; max_locals just grows).
        self._scopes: list[set[str]] = [set()]
        # Context stack entries: ("loop", break_patches, continue_pc, depth)
        # or ("monitor", lock_slot).
        self.context: list = []
        if capture_env:
            for name in capture_env:
                self._declare(name)
        if not static and "this" not in self.locals:
            self._declare("this")
        for name in params:
            self._declare(name)

    # -- low-level emission --------------------------------------------
    def emit(self, op: Op, arg: object = None, line: int = 0) -> int:
        self.code.append(Instr(op, arg, line))
        return len(self.code) - 1

    def here(self) -> int:
        return len(self.code)

    def patch(self, index: int, target: int) -> None:
        instr = self.code[index]
        if instr.op is Op.GOTO:
            instr.arg = target
        else:
            instr.arg = (instr.arg[0], target)

    def _declare(self, name: str) -> int:
        if name in self.locals:
            raise CompileError(f"{self.jclass.name}: duplicate variable {name!r}")
        slot = self.next_slot
        self.locals[name] = slot
        self.next_slot += 1
        self._scopes[-1].add(name)
        return slot

    def enter_scope(self) -> None:
        self._scopes.append(set())

    def exit_scope(self) -> None:
        for name in self._scopes.pop():
            del self.locals[name]

    def scoped_body(self, stmts) -> None:
        self.enter_scope()
        for stmt in stmts:
            self.stmt(stmt)
        self.exit_scope()

    def _hidden_slot(self) -> int:
        slot = self.next_slot
        self.next_slot += 1
        return slot

    def error(self, message: str, line: int) -> CompileError:
        return CompileError(f"{self.jclass.name} line {line}: {message}")

    # -- statements ------------------------------------------------------
    def stmt(self, node: A.Stmt) -> None:
        handler = getattr(self, f"_stmt_{type(node).__name__}", None)
        if handler is None:
            raise CompileError(f"no codegen for statement {type(node).__name__}")
        handler(node)

    def _stmt_VarDecl(self, node: A.VarDecl) -> None:
        self.expr(node.init)
        slot = self._declare(node.name)
        self.emit(Op.STORE, slot, node.line)

    def _stmt_Assign(self, node: A.Assign) -> None:
        target = node.target
        if isinstance(target, A.Name):
            if target.ident not in self.locals:
                raise self.error(f"assignment to undeclared {target.ident!r}"
                                 " (use 'var' or 'this.')", node.line)
            self.expr(node.value)
            self.emit(Op.STORE, self.locals[target.ident], node.line)
        elif isinstance(target, A.FieldAccess):
            if (isinstance(target.obj, A.Name)
                    and self._is_class_name(target.obj.ident)):
                self.expr(node.value)
                self.emit(Op.PUTSTATIC, (target.obj.ident, target.name), node.line)
                self.jclass.referenced.add(target.obj.ident)
                self.accessed_fields.add((target.obj.ident, target.name))
            else:
                self.expr(target.obj)
                self.expr(node.value)
                self.emit(Op.PUTFIELD, target.name, node.line)
                self._note_field(target.obj, target.name)
        elif isinstance(target, A.Index):
            self.expr(target.array)
            self.expr(target.index)
            self.expr(node.value)
            self.emit(Op.ASTORE, None, node.line)
        else:
            raise self.error("bad assignment target", node.line)

    def _stmt_ExprStmt(self, node: A.ExprStmt) -> None:
        produces = self.expr(node.expr, want_value=False)
        if produces:
            self.emit(Op.POP, None, node.line)

    def _stmt_If(self, node: A.If) -> None:
        self.expr(node.cond)
        jump_else = self.emit(Op.IFZ, ("==", -1), node.line)
        self.scoped_body(node.then_body)
        if node.else_body:
            jump_end = self.emit(Op.GOTO, -1, node.line)
            self.patch(jump_else, self.here())
            self.scoped_body(node.else_body)
            self.patch(jump_end, self.here())
        else:
            self.patch(jump_else, self.here())

    def _stmt_While(self, node: A.While) -> None:
        head = self.here()
        self.expr(node.cond)
        exit_jump = self.emit(Op.IFZ, ("==", -1), node.line)
        breaks: list[int] = []
        self.context.append(("loop", breaks, head, self._monitor_depth()))
        self.scoped_body(node.body)
        self.context.pop()
        self.emit(Op.GOTO, head, node.line)
        end = self.here()
        self.patch(exit_jump, end)
        for index in breaks:
            self.patch(index, end)

    def _stmt_For(self, node: A.For) -> None:
        self.enter_scope()
        if node.init is not None:
            self.stmt(node.init)
        head = self.here()
        exit_jump = None
        if node.cond is not None:
            self.expr(node.cond)
            exit_jump = self.emit(Op.IFZ, ("==", -1), node.line)
        breaks: list[int] = []
        continues: list[int] = []
        # continue must jump to the step, whose pc is unknown yet: collect.
        self.context.append(("forloop", breaks, continues, self._monitor_depth()))
        self.scoped_body(node.body)
        self.context.pop()
        step_pc = self.here()
        if node.step is not None:
            self.stmt(node.step)
        self.emit(Op.GOTO, head, node.line)
        end = self.here()
        if exit_jump is not None:
            self.patch(exit_jump, end)
        for index in breaks:
            self.patch(index, end)
        for index in continues:
            self.patch(index, step_pc)
        self.exit_scope()

    def _monitor_depth(self) -> int:
        return sum(1 for entry in self.context if entry[0] == "monitor")

    def _exit_monitors(self, down_to: int, line: int) -> None:
        """Emit MONITOREXITs for monitors entered above depth ``down_to``."""
        depth = self._monitor_depth()
        for entry in reversed(self.context):
            if entry[0] == "monitor":
                if depth <= down_to:
                    break
                self.emit(Op.LOAD, entry[1], line)
                self.emit(Op.MONITOREXIT, None, line)
                depth -= 1

    def _innermost_loop(self):
        for entry in reversed(self.context):
            if entry[0] in ("loop", "forloop"):
                return entry
        return None

    def _stmt_Break(self, node: A.Break) -> None:
        loop = self._innermost_loop()
        if loop is None:
            raise self.error("break outside loop", node.line)
        self._exit_monitors(loop[-1], node.line)
        loop[1].append(self.emit(Op.GOTO, -1, node.line))

    def _stmt_Continue(self, node: A.Continue) -> None:
        loop = self._innermost_loop()
        if loop is None:
            raise self.error("continue outside loop", node.line)
        self._exit_monitors(loop[-1], node.line)
        if loop[0] == "loop":
            self.emit(Op.GOTO, loop[2], node.line)
        else:
            loop[2].append(self.emit(Op.GOTO, -1, node.line))

    def _stmt_Return(self, node: A.Return) -> None:
        if node.value is not None:
            self.expr(node.value)
            self._exit_monitors(0, node.line)
            self.emit(Op.RETVAL, None, node.line)
        else:
            self._exit_monitors(0, node.line)
            self.emit(Op.RETURN, None, node.line)

    def _stmt_Synchronized(self, node: A.Synchronized) -> None:
        self.expr(node.lock)
        slot = self._hidden_slot()
        self.emit(Op.STORE, slot, node.line)
        self.emit(Op.LOAD, slot, node.line)
        self.emit(Op.MONITORENTER, None, node.line)
        self.context.append(("monitor", slot))
        self.scoped_body(node.body)
        self.context.pop()
        self.emit(Op.LOAD, slot, node.line)
        self.emit(Op.MONITOREXIT, None, node.line)

    # -- expressions -----------------------------------------------------
    def expr(self, node: A.Expr, want_value: bool = True) -> bool:
        """Emit ``node``; returns True if a value was pushed."""
        handler = getattr(self, f"_expr_{type(node).__name__}", None)
        if handler is None:
            raise CompileError(f"no codegen for expression {type(node).__name__}")
        return handler(node, want_value)

    def _is_class_name(self, ident: str) -> bool:
        return ident not in self.locals and ident in self.unit.class_names

    def _note_field(self, obj: A.Expr, name: str) -> None:
        owner = self.jclass.name if isinstance(obj, A.This) else None
        self.accessed_fields.add((owner, name))

    def _expr_Literal(self, node: A.Literal, want_value: bool) -> bool:
        self.emit(Op.CONST, node.value, node.line)
        return True

    def _expr_This(self, node: A.This, want_value: bool) -> bool:
        if "this" not in self.locals:
            raise self.error("'this' in a static context", node.line)
        self.emit(Op.LOAD, self.locals["this"], node.line)
        return True

    def _expr_Name(self, node: A.Name, want_value: bool) -> bool:
        slot = self.locals.get(node.ident)
        if slot is None:
            raise self.error(
                f"unknown variable {node.ident!r} (fields need 'this.', "
                "statics need 'Class.')", node.line)
        self.emit(Op.LOAD, slot, node.line)
        return True

    def _expr_Unary(self, node: A.Unary, want_value: bool) -> bool:
        self.expr(node.operand)
        if node.op == "-":
            self.emit(Op.NEG, None, node.line)
        elif node.op == "!":
            self.emit(Op.NOT, None, node.line)
        else:  # '~'
            self.emit(Op.CONST, -1, node.line)
            self.emit(Op.XOR, None, node.line)
        return True

    _BINOPS = {
        "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.REM,
        "<<": Op.SHL, ">>": Op.SHR, "&": Op.AND, "|": Op.OR, "^": Op.XOR,
    }

    def _expr_Binary(self, node: A.Binary, want_value: bool) -> bool:
        self.expr(node.lhs)
        self.expr(node.rhs)
        if node.op in self._BINOPS:
            self.emit(self._BINOPS[node.op], None, node.line)
        else:
            self.emit(Op.CMP, node.op, node.line)
        return True

    def _expr_ShortCircuit(self, node: A.ShortCircuit, want_value: bool) -> bool:
        self.expr(node.lhs)
        if node.op == "&&":
            shortcut = self.emit(Op.IFZ, ("==", -1), node.line)
            self.expr(node.rhs)
            shortcut2 = self.emit(Op.IFZ, ("==", -1), node.line)
            self.emit(Op.CONST, 1, node.line)
            done = self.emit(Op.GOTO, -1, node.line)
            false_pc = self.here()
            self.patch(shortcut, false_pc)
            self.patch(shortcut2, false_pc)
            self.emit(Op.CONST, 0, node.line)
            self.patch(done, self.here())
        else:
            shortcut = self.emit(Op.IFZ, ("!=", -1), node.line)
            self.expr(node.rhs)
            shortcut2 = self.emit(Op.IFZ, ("!=", -1), node.line)
            self.emit(Op.CONST, 0, node.line)
            done = self.emit(Op.GOTO, -1, node.line)
            true_pc = self.here()
            self.patch(shortcut, true_pc)
            self.patch(shortcut2, true_pc)
            self.emit(Op.CONST, 1, node.line)
            self.patch(done, self.here())
        return True

    def _expr_FieldAccess(self, node: A.FieldAccess, want_value: bool) -> bool:
        if isinstance(node.obj, A.Name) and self._is_class_name(node.obj.ident):
            self.emit(Op.GETSTATIC, (node.obj.ident, node.name), node.line)
            self.jclass.referenced.add(node.obj.ident)
            self.accessed_fields.add((node.obj.ident, node.name))
            return True
        self.expr(node.obj)
        self.emit(Op.GETFIELD, node.name, node.line)
        self._note_field(node.obj, node.name)
        return True

    def _expr_Index(self, node: A.Index, want_value: bool) -> bool:
        self.expr(node.array)
        self.expr(node.index)
        self.emit(Op.ALOAD, None, node.line)
        return True

    def _expr_New(self, node: A.New, want_value: bool) -> bool:
        if node.class_name not in self.unit.class_names:
            raise self.error(f"unknown class {node.class_name!r}", node.line)
        self.jclass.referenced.add(node.class_name)
        self.emit(Op.NEW, node.class_name, node.line)
        self.emit(Op.DUP, None, node.line)
        for arg in node.args:
            self.expr(arg)
        self.emit(Op.INVOKESPECIAL,
                  (node.class_name, "init", len(node.args)), node.line)
        # Every call pushes a result (null for void): drop the
        # constructor's, keeping the DUPed reference.
        self.emit(Op.POP, None, node.line)
        self.called.add((node.class_name, "init"))
        return True

    def _expr_NewArray(self, node: A.NewArray, want_value: bool) -> bool:
        self.expr(node.length)
        self.emit(Op.NEWARRAY, node.kind, node.line)
        return True

    def _expr_InstanceOf(self, node: A.InstanceOf, want_value: bool) -> bool:
        if node.class_name not in self.unit.class_names:
            raise self.error(f"unknown class {node.class_name!r}", node.line)
        self.expr(node.obj)
        self.emit(Op.INSTANCEOF, node.class_name, node.line)
        self.jclass.referenced.add(node.class_name)
        return True

    def _expr_Lambda(self, node: A.Lambda, want_value: bool) -> bool:
        captured: list[str] = []
        seen: set[str] = set()
        _free_vars(node.body, set(node.params), self.unit.class_names,
                   captured, seen)
        unknown = [n for n in captured
                   if n != "this" and n not in self.locals]
        if unknown:
            raise self.error(f"lambda captures unknown names {unknown}",
                             node.line)
        if "this" in captured and "this" not in self.locals:
            raise self.error("lambda captures 'this' in a static context",
                             node.line)
        # Lift into a synthetic static method on the current class.  A
        # per-class counter reserves the name *before* the body is
        # generated — a nested lambda inside this body must not reuse it.
        index = getattr(self.jclass, "_lambda_counter", 0)
        self.jclass._lambda_counter = index + 1
        lname = f"lambda${index}"
        gen = _MethodCodegen(self.unit, self.jclass, static=True,
                             params=node.params, capture_env=captured)
        for stmt in node.body:
            gen.stmt(stmt)
        gen.emit(Op.RETURN)
        method = JMethod(lname, self.jclass.name,
                         len(captured) + len(node.params), gen.code,
                         max_locals=gen.next_slot, static=True)
        method.accessed_fields = gen.accessed_fields
        method.called = gen.called
        self.jclass.add_method(method)
        for name in captured:
            self.emit(Op.LOAD, self.locals[name], node.line)
        self.emit(Op.INVOKEDYNAMIC,
                  (self.jclass.name, lname, len(captured)), node.line)
        return True

    def _expr_Call(self, node: A.Call, want_value: bool) -> bool:
        callee = node.callee
        if isinstance(callee, A.Name):
            if callee.ident in BUILTINS:
                return self._builtin(callee.ident, node)
            slot = self.locals.get(callee.ident)
            if slot is None:
                raise self.error(
                    f"call of unknown name {callee.ident!r} (closures must "
                    "be locals; static calls need 'Class.method')", node.line)
            # Closure call through a local: MethodHandle.invoke.
            self.emit(Op.LOAD, slot, node.line)
            for arg in node.args:
                self.expr(arg)
            self.emit(Op.INVOKEHANDLE, len(node.args), node.line)
            self.called.add((None, "invoke"))
            return True
        if isinstance(callee, A.FieldAccess):
            obj = callee.obj
            if isinstance(obj, A.Name) and self._is_class_name(obj.ident):
                for arg in node.args:
                    self.expr(arg)
                self.emit(Op.INVOKESTATIC,
                          (obj.ident, callee.name, len(node.args)), node.line)
                self.jclass.referenced.add(obj.ident)
                self.called.add((obj.ident, callee.name))
                return True
            self.expr(obj)
            for arg in node.args:
                self.expr(arg)
            self.emit(Op.INVOKEVIRTUAL,
                      (None, callee.name, len(node.args)), node.line)
            owner = self.jclass.name if isinstance(obj, A.This) else None
            self.called.add((owner, callee.name))
            return True
        # Anything else: expression evaluating to a closure.
        self.expr(callee)
        for arg in node.args:
            self.expr(arg)
        self.emit(Op.INVOKEHANDLE, len(node.args), node.line)
        self.called.add((None, "invoke"))
        return True

    # -- builtins ----------------------------------------------------------
    def _builtin(self, name: str, node: A.Call) -> bool:
        args = node.args
        arity = _BUILTIN_ARITY[name]
        if len(args) != arity:
            raise self.error(f"{name} expects {arity} args, got {len(args)}",
                             node.line)
        line = node.line
        if name == "cas":
            target = args[0]
            if not isinstance(target, A.FieldAccess):
                raise self.error("cas target must be obj.field", line)
            self.expr(target.obj)
            self.expr(args[1])
            self.expr(args[2])
            self.emit(Op.CAS, target.name, line)
            self._note_field(target.obj, target.name)
            return True
        if name == "atomicGet":
            target = args[0]
            if not isinstance(target, A.FieldAccess):
                raise self.error("atomicGet target must be obj.field", line)
            self.expr(target.obj)
            self.emit(Op.ATOMIC_GET, target.name, line)
            self._note_field(target.obj, target.name)
            return True
        if name == "atomicAdd":
            target = args[0]
            if not isinstance(target, A.FieldAccess):
                raise self.error("atomicAdd target must be obj.field", line)
            self.expr(target.obj)
            self.expr(args[1])
            self.emit(Op.ATOMIC_ADD, target.name, line)
            self._note_field(target.obj, target.name)
            return True
        if name == "park":
            self.emit(Op.PARK, None, line)
            return False
        if name == "unpark":
            self.expr(args[0])
            self.emit(Op.UNPARK, None, line)
            return False
        if name == "wait":
            self.expr(args[0])
            self.emit(Op.WAIT, None, line)
            return False
        if name == "notify":
            self.expr(args[0])
            self.emit(Op.NOTIFY, None, line)
            return False
        if name == "notifyAll":
            self.expr(args[0])
            self.emit(Op.NOTIFYALL, None, line)
            return False
        if name == "len":
            self.expr(args[0])
            self.emit(Op.ARRAYLEN, None, line)
            return True
        if name == "cast":
            target = args[0]
            if not isinstance(target, A.Name):
                raise self.error("cast(Class, expr) needs a class name", line)
            if target.ident not in self.unit.class_names:
                raise self.error(f"unknown class {target.ident!r}", line)
            self.expr(args[1])
            self.emit(Op.CHECKCAST, target.ident, line)
            self.jclass.referenced.add(target.ident)
            return True
        if name == "i2d":
            self.expr(args[0])
            self.emit(Op.I2D, None, line)
            return True
        if name == "d2i":
            self.expr(args[0])
            self.emit(Op.D2I, None, line)
            return True
        raise self.error(f"unhandled builtin {name}", line)
