"""Lexer for the JL guest language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset({
    "class", "interface", "extends", "implements", "var", "static", "def",
    "native", "synchronized", "if", "else", "while", "for", "return",
    "break", "continue", "new", "null", "this", "true", "false", "fun",
    "instanceof",
})

# Multi-char operators first (longest match wins).
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", ".", ":",
)


@dataclass
class Token:
    """One lexical token; ``kind`` is 'ident', 'kw', 'int', 'float',
    'str', 'op' or 'eof'."""

    kind: str
    value: object
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


_ESCAPES = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "'": "'", "0": "\0"}


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_line, start_col = line, col
            is_float = False
            while i < n and (source[i].isdigit() or source[i] == "."):
                if source[i] == ".":
                    if is_float:
                        break
                    # ".5" method call vs float: a digit must follow.
                    if i + 1 >= n or not source[i + 1].isdigit():
                        break
                    is_float = True
                advance(1)
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    is_float = True
                    advance(j - i)
                    while i < n and source[i].isdigit():
                        advance(1)
            text = source[start:i]
            value = float(text) if is_float else int(text)
            tokens.append(Token("float" if is_float else "int", value,
                                start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            word = source[start:i]
            kind = "kw" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start_line, start_col))
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            out = []
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    if i + 1 >= n:
                        raise LexError("bad escape", line, col)
                    esc = source[i + 1]
                    if esc not in _ESCAPES:
                        raise LexError(f"bad escape \\{esc}", line, col)
                    out.append(_ESCAPES[esc])
                    advance(2)
                else:
                    if source[i] == "\n":
                        raise LexError("newline in string", line, col)
                    out.append(source[i])
                    advance(1)
            if i >= n:
                raise LexError("unterminated string", start_line, start_col)
            advance(1)
            tokens.append(Token("str", "".join(out), start_line, start_col))
            continue
        if ch == "'":
            start_line, start_col = line, col
            advance(1)
            if i < n and source[i] == "\\":
                if i + 1 >= n or source[i + 1] not in _ESCAPES:
                    raise LexError("bad char escape", line, col)
                value = ord(_ESCAPES[source[i + 1]])
                advance(2)
            elif i < n:
                value = ord(source[i])
                advance(1)
            else:
                raise LexError("unterminated char literal", start_line, start_col)
            if i >= n or source[i] != "'":
                raise LexError("unterminated char literal", start_line, start_col)
            advance(1)
            tokens.append(Token("int", value, start_line, start_col))
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("eof", None, line, col))
    return tokens
