"""AST node definitions for the JL guest language.

All nodes are plain dataclasses; the parser produces them and codegen
consumes them.  Every node carries a source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Declarations.
# ----------------------------------------------------------------------

@dataclass
class ClassDecl:
    name: str
    super_name: str
    interfaces: list[str]
    is_interface: bool
    fields: list["FieldDecl"]
    methods: list["MethodDecl"]
    line: int = 0


@dataclass
class FieldDecl:
    name: str
    static: bool
    init: "Expr | None"     # only meaningful for static fields
    line: int = 0


@dataclass
class MethodDecl:
    name: str
    params: list[str]
    body: "list[Stmt] | None"   # None for native/abstract
    static: bool
    native: bool
    synchronized: bool
    line: int = 0
    end_line: int = 0


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------

class Stmt:
    pass


@dataclass
class VarDecl(Stmt):
    name: str
    init: "Expr"
    line: int = 0


@dataclass
class Assign(Stmt):
    target: "Expr"           # Name, FieldAccess, StaticAccess or Index
    value: "Expr"
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: "Expr"
    line: int = 0


@dataclass
class If(Stmt):
    cond: "Expr"
    then_body: list[Stmt]
    else_body: list[Stmt]
    line: int = 0


@dataclass
class While(Stmt):
    cond: "Expr"
    body: list[Stmt]
    line: int = 0


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: "Expr | None"
    step: Stmt | None
    body: list[Stmt]
    line: int = 0


@dataclass
class Return(Stmt):
    value: "Expr | None"
    line: int = 0


@dataclass
class Break(Stmt):
    line: int = 0


@dataclass
class Continue(Stmt):
    line: int = 0


@dataclass
class Synchronized(Stmt):
    lock: "Expr"
    body: list[Stmt]
    line: int = 0


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------

class Expr:
    pass


@dataclass
class Literal(Expr):
    value: object            # int, float, str or None (null)
    line: int = 0


@dataclass
class Name(Expr):
    ident: str
    line: int = 0


@dataclass
class This(Expr):
    line: int = 0


@dataclass
class Unary(Expr):
    op: str                  # '-', '!', '~'
    operand: Expr
    line: int = 0


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass
class ShortCircuit(Expr):
    op: str                  # '&&' or '||'
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass
class FieldAccess(Expr):
    obj: Expr
    name: str
    line: int = 0


@dataclass
class StaticAccess(Expr):
    class_name: str
    name: str
    line: int = 0


@dataclass
class Index(Expr):
    array: Expr
    index: Expr
    line: int = 0


@dataclass
class Call(Expr):
    """A call whose callee shape decides the invoke kind in codegen:

    - ``Name`` that is a class name        -> INVOKESTATIC
    - ``Name`` that is a local/param       -> INVOKEHANDLE (closure call)
    - ``FieldAccess``                      -> INVOKEVIRTUAL (or closure call
      if the method does not exist — resolved dynamically)
    - builtins (cas, len, park, ...)       -> dedicated opcodes
    """

    callee: Expr             # Name / FieldAccess / StaticAccess
    args: list[Expr]
    line: int = 0


@dataclass
class New(Expr):
    class_name: str
    args: list[Expr]
    line: int = 0


@dataclass
class NewArray(Expr):
    kind: str                # 'int', 'double' or 'ref'
    length: Expr
    line: int = 0


@dataclass
class Lambda(Expr):
    params: list[str]
    body: list[Stmt]         # statement body; single-expression lambdas
    line: int = 0            # are parsed into [Return(expr)]


@dataclass
class InstanceOf(Expr):
    obj: Expr
    class_name: str
    line: int = 0


@dataclass
class Builtin(Expr):
    """A language intrinsic: cas, atomicGet, atomicAdd, park, unpark,
    wait, notify, notifyAll, len, cast, i2d, d2i."""

    name: str
    args: list[Expr]
    line: int = 0
