"""The guest standard library, written in JL.

These classes are the reproduction's analogue of the JDK + framework
layer the Renaissance workloads use.  They are deliberately written in
the same bytecode-level idioms as their Java counterparts, because the
paper's optimizations key on exactly those patterns:

- :class:`Random` updates its seed with a CAS retry loop and
  ``nextDouble`` performs **two consecutive CAS loops** — the
  atomic-operation-coalescing (AC) target (paper Section 5.3),
- :class:`Promise` completes through CAS and blocks through
  park/unpark — the escape-analysis-with-atomics (EAWA) and ``park``
  metric source (Section 5.1, Twitter Finagle's ``Promise``),
- :class:`Vector` has synchronized accessors called from loops — the
  loop-wide lock-coarsening (LLC) target (Section 5.2,
  ``java.util.Vector``),
- :class:`Stream` parameterizes operations with lambdas invoked through
  method handles — the method-handle-simplification (MHS) target
  (Section 5.4, Java Streams),
- :class:`BlockingQueue` uses guarded blocks (wait/notify),
  :class:`ConcurrentQueue` is a Michael–Scott lock-free queue, and
  :class:`STM` is a versioned software-transactional-memory runtime
  (ScalaSTM's role in ``philosophers``/``stm-bench7``).
"""

CORE = r"""
// ---------------------------------------------------------------- threads
class Thread {
    var target;
    var daemon;
    var name;

    def init(t) {
        this.target = t;
        this.daemon = false;
        this.name = "thread";
    }

    native def start();
    native def join();
    native def yieldNow();
    native def isAlive();
    static native def current();
}

class CountDownLatch {
    var count;

    def init(n) { this.count = n; }

    def countDown() {
        synchronized (this) {
            this.count = this.count - 1;
            if (this.count <= 0) {
                notifyAll(this);
            }
        }
    }

    def await() {
        synchronized (this) {
            while (this.count > 0) {
                wait(this);
            }
        }
    }
}

// ---------------------------------------------------------------- atomics
class AtomicLong {
    var value;

    def init(v) { this.value = v; }

    def get() { return atomicGet(this.value); }
    def set(v) { this.value = v; }
    def getAndAdd(d) { return atomicAdd(this.value, d); }
    def addAndGet(d) { return atomicAdd(this.value, d) + d; }
    def incrementAndGet() { return atomicAdd(this.value, 1) + 1; }
    def getAndIncrement() { return atomicAdd(this.value, 1); }
    def compareAndSet(expect, update) { return cas(this.value, expect, update); }
}

class AtomicRef {
    var value;

    def init(v) { this.value = v; }

    def get() { return atomicGet(this.value); }
    def set(v) { this.value = v; }
    def compareAndSet(expect, update) { return cas(this.value, expect, update); }

    def getAndSet(v) {
        while (true) {
            var old = atomicGet(this.value);
            if (cas(this.value, old, v)) {
                return old;
            }
        }
        return null;
    }
}

// java.util.Random: CAS retry loop on the shared seed.  nextDouble
// executes two consecutive CAS loops (the AC optimization target).
class Random {
    var seed;

    def init(s) {
        this.seed = (s ^ 25214903917) & 281474976710655;
    }

    def next(bits) {
        var nextSeed = 0;
        while (true) {
            var s = atomicGet(this.seed);
            nextSeed = (s * 25214903917 + 11) & 281474976710655;
            if (cas(this.seed, s, nextSeed)) {
                break;
            }
        }
        return nextSeed >> (48 - bits);
    }

    def nextInt(bound) {
        return this.next(31) % bound;
    }

    def nextDouble() {
        var hi = this.next(26);
        var lo = this.next(27);
        return (hi * 134217728 + lo) / 9007199254740992.0;
    }

    def nextBool() {
        return this.next(1);
    }
}

// Non-thread-safe LCG (scimark's own Random class): plain field
// updates, no atomics — used by the single-threaded comparison suites.
class PlainRandom {
    var seed;

    def init(s) {
        this.seed = (s ^ 25214903917) & 281474976710655;
    }

    def next(bits) {
        var nextSeed = (this.seed * 25214903917 + 11) & 281474976710655;
        this.seed = nextSeed;
        return nextSeed >> (48 - bits);
    }

    def nextInt(bound) {
        return this.next(31) % bound;
    }

    def nextDouble() {
        var hi = this.next(26);
        var lo = this.next(27);
        return (hi * 134217728 + lo) / 9007199254740992.0;
    }
}
"""

COLLECTIONS = r"""
// ------------------------------------------------------------ collections
class ArrayList {
    var data;
    var count;

    def init() {
        this.data = new ref[8];
        this.count = 0;
    }

    def add(x) {
        if (this.count == len(this.data)) {
            this.grow();
        }
        this.data[this.count] = x;
        this.count = this.count + 1;
    }

    def grow() {
        var bigger = new ref[len(this.data) * 2];
        Arrays.copy(this.data, 0, bigger, 0, this.count);
        this.data = bigger;
    }

    def get(i) { return this.data[i]; }
    def set(i, x) { this.data[i] = x; }
    def size() { return this.count; }
    def isEmpty() { return this.count == 0; }

    def removeLast() {
        this.count = this.count - 1;
        var x = this.data[this.count];
        this.data[this.count] = null;
        return x;
    }

    def toArray() {
        var out = new ref[this.count];
        Arrays.copy(this.data, 0, out, 0, this.count);
        return out;
    }
}

// java.util.Vector: every accessor is synchronized — the loop-wide
// lock-coarsening (LLC) target when called from hot loops.
class Vector {
    var data;
    var count;

    def init() {
        this.data = new ref[8];
        this.count = 0;
    }

    synchronized def add(x) {
        if (this.count == len(this.data)) {
            var bigger = new ref[len(this.data) * 2];
            Arrays.copy(this.data, 0, bigger, 0, this.count);
            this.data = bigger;
        }
        this.data[this.count] = x;
        this.count = this.count + 1;
    }

    synchronized def get(i) { return this.data[i]; }
    synchronized def set(i, x) { this.data[i] = x; }
    synchronized def size() { return this.count; }
}

class MapEntry {
    var key;
    var value;
    var next;

    def init(k, v, n) {
        this.key = k;
        this.value = v;
        this.next = n;
    }
}

// Chained hash map over int/string/ref keys (value equality for
// ints and strings, identity for refs — like Java's default equals).
class HashMap {
    var buckets;
    var count;

    def init() {
        this.buckets = new ref[16];
        this.count = 0;
    }

    def indexFor(k) {
        var h = Sys.hashOf(k);
        return h % len(this.buckets);
    }

    def put(k, v) {
        var i = this.indexFor(k);
        var e = this.buckets[i];
        while (e != null) {
            if (e.key == k) {
                e.value = v;
                return false;
            }
            e = e.next;
        }
        this.buckets[i] = new MapEntry(k, v, this.buckets[i]);
        this.count = this.count + 1;
        if (this.count > len(this.buckets) * 3 / 4) {
            this.resize();
        }
        return true;
    }

    def resize() {
        var old = this.buckets;
        this.buckets = new ref[len(old) * 2];
        var i = 0;
        while (i < len(old)) {
            var e = old[i];
            while (e != null) {
                var nxt = e.next;
                var j = this.indexFor(e.key);
                e.next = this.buckets[j];
                this.buckets[j] = e;
                e = nxt;
            }
            i = i + 1;
        }
    }

    def get(k) {
        var e = this.buckets[this.indexFor(k)];
        while (e != null) {
            if (e.key == k) {
                return e.value;
            }
            e = e.next;
        }
        return null;
    }

    def contains(k) {
        var e = this.buckets[this.indexFor(k)];
        while (e != null) {
            if (e.key == k) {
                return true;
            }
            e = e.next;
        }
        return false;
    }

    def size() { return this.count; }

    def keys() {
        var out = new ArrayList();
        var i = 0;
        while (i < len(this.buckets)) {
            var e = this.buckets[i];
            while (e != null) {
                out.add(e.key);
                e = e.next;
            }
            i = i + 1;
        }
        return out;
    }

    def entries() {
        var out = new ArrayList();
        var i = 0;
        while (i < len(this.buckets)) {
            var e = this.buckets[i];
            while (e != null) {
                out.add(e);
                e = e.next;
            }
            i = i + 1;
        }
        return out;
    }
}
"""

CONCURRENT = r"""
// --------------------------------------------------- concurrent queues
class QNode {
    var item;
    var next;

    def init(item) {
        this.item = item;
        this.next = null;
    }
}

// Michael-Scott lock-free queue (java.util.concurrent.ConcurrentLinkedQueue).
class ConcurrentQueue {
    var head;
    var tail;

    def init() {
        var sentinel = new QNode(null);
        this.head = sentinel;
        this.tail = sentinel;
    }

    def offer(x) {
        var node = new QNode(x);
        while (true) {
            var t = atomicGet(this.tail);
            var nxt = atomicGet(t.next);
            if (nxt == null) {
                if (cas(t.next, null, node)) {
                    cas(this.tail, t, node);
                    return true;
                }
            } else {
                cas(this.tail, t, nxt);
            }
        }
        return false;
    }

    def poll() {
        while (true) {
            var h = atomicGet(this.head);
            var nxt = atomicGet(h.next);
            if (nxt == null) {
                return null;
            }
            if (cas(this.head, h, nxt)) {
                var item = nxt.item;
                nxt.item = null;
                return item;
            }
        }
        return null;
    }

    def isEmpty() {
        var h = atomicGet(this.head);
        return atomicGet(h.next) == null;
    }
}

// Bounded blocking queue with guarded blocks (wait/notify), as
// java.util.concurrent.ArrayBlockingQueue.
class BlockingQueue {
    var items;
    var head;
    var tail;
    var count;

    def init(capacity) {
        this.items = new ref[capacity];
        this.head = 0;
        this.tail = 0;
        this.count = 0;
    }

    def put(x) {
        synchronized (this) {
            while (this.count == len(this.items)) {
                wait(this);
            }
            this.items[this.tail] = x;
            this.tail = (this.tail + 1) % len(this.items);
            this.count = this.count + 1;
            notifyAll(this);
        }
    }

    def take() {
        var out = null;
        synchronized (this) {
            while (this.count == 0) {
                wait(this);
            }
            out = this.items[this.head];
            this.items[this.head] = null;
            this.head = (this.head + 1) % len(this.items);
            this.count = this.count - 1;
            notifyAll(this);
        }
        return out;
    }

    def size() {
        synchronized (this) {
            return this.count;
        }
        return 0;
    }
}
"""

FUTURES = r"""
// ------------------------------------------------------- futures / pools
class WaiterNode {
    var thread;      // a guest Thread to unpark, or null
    var callback;    // a closure to run on completion, or null
    var next;

    def init(thread, callback, next) {
        this.thread = thread;
        this.callback = callback;
        this.next = next;
    }
}

// Twitter-Finagle-style Promise: CAS state transition, Treiber stack of
// waiters, park/unpark blocking, and monadic combinators.
class Promise {
    var state;       // 0 = pending, 1 = completing, 2 = done
    var value;
    var waiters;     // Treiber stack of WaiterNode

    def init() {
        this.state = 0;
        this.value = null;
        this.waiters = null;
    }

    def isDone() { return atomicGet(this.state) == 2; }

    def complete(v) {
        // Claim the completion slot first: losers must not clobber the
        // winner's value.
        if (!cas(this.state, 0, 1)) {
            return false;
        }
        this.value = v;
        this.state = 2;
        // Drain waiters exactly once.
        while (true) {
            var ws = atomicGet(this.waiters);
            if (cas(this.waiters, ws, null)) {
                while (ws != null) {
                    if (ws.thread != null) {
                        unpark(ws.thread);
                    }
                    if (ws.callback != null) {
                        var cb = ws.callback;
                        cb(v);
                    }
                    ws = ws.next;
                }
                return true;
            }
        }
        return true;
    }

    def pushWaiter(node) {
        while (true) {
            var ws = atomicGet(this.waiters);
            node.next = ws;
            if (cas(this.waiters, ws, node)) {
                return true;
            }
        }
        return false;
    }

    def get() {
        if (atomicGet(this.state) == 2) {
            return this.value;
        }
        var me = Thread.current();
        var node = new WaiterNode(me, null, null);
        this.pushWaiter(node);
        while (atomicGet(this.state) != 2) {
            park();
        }
        return this.value;
    }

    def onComplete(f) {
        if (atomicGet(this.state) == 2) {
            f(this.value);
            return true;
        }
        this.pushWaiter(new WaiterNode(null, f, null));
        // The completion may have raced with registration.
        if (atomicGet(this.state) == 2) {
            this.drainLate();
        }
        return true;
    }

    def drainLate() {
        while (true) {
            var ws = atomicGet(this.waiters);
            if (ws == null) {
                return false;
            }
            if (cas(this.waiters, ws, null)) {
                while (ws != null) {
                    if (ws.thread != null) {
                        unpark(ws.thread);
                    }
                    if (ws.callback != null) {
                        var cb = ws.callback;
                        cb(this.value);
                    }
                    ws = ws.next;
                }
                return true;
            }
        }
        return false;
    }

    def map(f) {
        var out = new Promise();
        this.onComplete(fun (v) { out.complete(f(v)); });
        return out;
    }

    def flatMap(f) {
        var out = new Promise();
        this.onComplete(fun (v) {
            var inner = f(v);
            inner.onComplete(fun (w) { out.complete(w); });
        });
        return out;
    }

    static def done(v) {
        var p = new Promise();
        p.complete(v);
        return p;
    }
}

class PoisonPill {
    def init() { }
}

// Fixed-size executor backed by a BlockingQueue of closures.
class ThreadPool {
    var queue;
    var workers;
    var poolSize;

    def init(n) {
        this.queue = new BlockingQueue(4096);
        this.poolSize = n;
        this.workers = new ref[n];
        var self = this;
        var i = 0;
        while (i < n) {
            var t = new Thread(fun () { self.workerLoop(); });
            t.daemon = true;
            t.name = "pool-worker";
            t.start();
            this.workers[i] = t;
            i = i + 1;
        }
    }

    def workerLoop() {
        while (true) {
            var task = this.queue.take();
            if (task instanceof PoisonPill) {
                break;
            }
            task();
        }
    }

    def execute(task) {
        this.queue.put(task);
    }

    def submit(task) {
        var p = new Promise();
        this.queue.put(fun () { p.complete(task()); });
        return p;
    }

    def shutdown() {
        var i = 0;
        while (i < this.poolSize) {
            this.queue.put(new PoisonPill());
            i = i + 1;
        }
        i = 0;
        while (i < this.poolSize) {
            var w = cast(Thread, this.workers[i]);
            w.join();
            i = i + 1;
        }
    }
}

// Fork/join layer: recursive task splitting on a shared pool.
class ForkJoinTask {
    var pool;
    var promise;
    var body;

    def init(pool, body) {
        this.pool = pool;
        this.body = body;
        this.promise = new Promise();
    }

    def fork() {
        var self = this;
        this.pool.execute(fun () {
            var b = self.body;
            self.promise.complete(b());
        });
        return this;
    }

    def join() {
        return this.promise.get();
    }
}
"""

STREAMS = r"""
// ------------------------------------------------------------- streams
// Java-8-Streams analogue: operations take lambdas, which arrive as
// method handles (the MHS optimization target once `map`/`filter`
// are inlined into the hot caller).
class Stream {
    var data;        // ref array
    var count;

    def init() {
        this.data = null;
        this.count = 0;
    }

    static def wrap(arr, n) {
        var s = new Stream();
        s.data = arr;
        s.count = n;
        return s;
    }

    static def of(list) {
        return Stream.wrap(list.toArray(), list.size());
    }

    static def range(lo, hi) {
        var n = hi - lo;
        var arr = new ref[n];
        var i = 0;
        while (i < n) {
            arr[i] = lo + i;
            i = i + 1;
        }
        return Stream.wrap(arr, n);
    }

    def map(f) {
        var out = new ref[this.count];
        var i = 0;
        while (i < this.count) {
            out[i] = f(this.data[i]);
            i = i + 1;
        }
        return Stream.wrap(out, this.count);
    }

    def filter(p) {
        var out = new ref[this.count];
        var n = 0;
        var i = 0;
        while (i < this.count) {
            var x = this.data[i];
            if (p(x)) {
                out[n] = x;
                n = n + 1;
            }
            i = i + 1;
        }
        return Stream.wrap(out, n);
    }

    def reduce(zero, f) {
        var acc = zero;
        var i = 0;
        while (i < this.count) {
            acc = f(acc, this.data[i]);
            i = i + 1;
        }
        return acc;
    }

    def forEach(f) {
        var i = 0;
        while (i < this.count) {
            f(this.data[i]);
            i = i + 1;
        }
    }

    def sum() {
        var acc = 0;
        var i = 0;
        while (i < this.count) {
            acc = acc + this.data[i];
            i = i + 1;
        }
        return acc;
    }

    def size() { return this.count; }

    def toList() {
        var out = new ArrayList();
        var i = 0;
        while (i < this.count) {
            out.add(this.data[i]);
            i = i + 1;
        }
        return out;
    }

    // Parallel variant: chunks dispatched onto a pool, results joined
    // through promises (parallel streams split work the same way).
    def parMap(pool, chunks, f) {
        var n = this.count;
        var out = new ref[n];
        var per = (n + chunks - 1) / chunks;
        var latch = new CountDownLatch(chunks);
        var data = this.data;
        var c = 0;
        while (c < chunks) {
            var lo = c * per;
            var hi = lo + per;
            if (hi > n) {
                hi = n;
            }
            pool.execute(fun () {
                var i = lo;
                while (i < hi) {
                    out[i] = f(data[i]);
                    i = i + 1;
                }
                latch.countDown();
            });
            c = c + 1;
        }
        latch.await();
        return Stream.wrap(out, n);
    }
}
"""

STM = r"""
// ----------------------------------------------------------------- STM
// Versioned STM with optimistic reads and commit-time validation under
// a global commit lock (the ScalaSTM role in philosophers/stm-bench7).
class STMRef {
    var value;
    var version;

    def init(v) {
        this.value = v;
        this.version = 0;
    }
}

class TxnEntry {
    var ref;
    var seenVersion;
    var newValue;
    var isWrite;
    var next;

    def init(ref, seenVersion, newValue, isWrite, next) {
        this.ref = ref;
        this.seenVersion = seenVersion;
        this.newValue = newValue;
        this.isWrite = isWrite;
        this.next = next;
    }
}

class Txn {
    var entries;     // linked list of TxnEntry

    def init() {
        this.entries = null;
    }

    def findEntry(ref) {
        var e = this.entries;
        while (e != null) {
            if (e.ref == ref) {
                return e;
            }
            e = e.next;
        }
        return null;
    }

    def read(ref) {
        var e = this.findEntry(ref);
        if (e != null) {
            if (e.isWrite) {
                return e.newValue;
            }
            return e.ref.value;
        }
        this.entries = new TxnEntry(ref, ref.version, null, false, this.entries);
        return ref.value;
    }

    def write(ref, v) {
        var e = this.findEntry(ref);
        if (e != null) {
            e.isWrite = true;
            e.newValue = v;
            return true;
        }
        this.entries = new TxnEntry(ref, ref.version, v, true, this.entries);
        return true;
    }

    def commit() {
        synchronized (STM.commitLock) {
            var e = this.entries;
            while (e != null) {
                if (e.ref.version != e.seenVersion) {
                    STM.aborts.incrementAndGet();
                    return false;
                }
                e = e.next;
            }
            e = this.entries;
            while (e != null) {
                if (e.isWrite) {
                    e.ref.value = e.newValue;
                    e.ref.version = e.ref.version + 1;
                }
                e = e.next;
            }
        }
        STM.commits.incrementAndGet();
        return true;
    }
}

class STM {
    static var commitLock = new Object();
    static var aborts = new AtomicLong(0);
    static var commits = new AtomicLong(0);

    static def atomic(f) {
        while (true) {
            var txn = new Txn();
            var result = f(txn);
            if (txn.commit()) {
                return result;
            }
        }
        return null;
    }
}
"""

TEXT = r"""
// ------------------------------------------------------------ text utils
class Text {
    // Split `s` on single-character separator `sep` (a char code).
    static def split(s, sep) {
        var out = new ArrayList();
        var n = Str.len(s);
        var start = 0;
        var i = 0;
        while (i < n) {
            if (Str.charAt(s, i) == sep) {
                if (i > start) {
                    out.add(Str.sub(s, start, i));
                }
                start = i + 1;
            }
            i = i + 1;
        }
        if (n > start) {
            out.add(Str.sub(s, start, n));
        }
        return out;
    }

    static def join(list, sep) {
        var out = "";
        var i = 0;
        while (i < list.size()) {
            if (i > 0) {
                out = out + sep;
            }
            out = out + list.get(i);
            i = i + 1;
        }
        return out;
    }

    static def repeat(s, n) {
        var out = "";
        var i = 0;
        while (i < n) {
            out = out + s;
            i = i + 1;
        }
        return out;
    }
}
"""

STDLIB_SOURCES = [CORE, COLLECTIONS, CONCURRENT, FUTURES, STREAMS, STM, TEXT]
