"""The guest-language front-end ("JL" — JVM-lite language).

The Renaissance workloads are Java/Scala programs; their reproduction
counterparts are written in JL, a small dynamically-checked class-based
language that compiles to the simulated JVM's bytecode.  JL has exactly
the surface the paper's optimizations need: classes with single
inheritance and interfaces, first-class lambdas (compiled to
``invokedynamic`` + method-handle calls), ``synchronized`` blocks and
methods, CAS/park/wait/notify intrinsics, and typed arrays.

Public API::

    from repro.lang import compile_program
    program = compile_program(source, include_stdlib=True)
"""

from repro.lang.codegen import Program, compile_program
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

__all__ = ["compile_program", "Program", "tokenize", "parse"]
