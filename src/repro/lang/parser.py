"""Recursive-descent parser for the JL guest language.

Grammar sketch (see tests/lang for executable examples)::

    program     := (classdecl | interfacedecl)*
    classdecl   := 'class' IDENT ('extends' IDENT)?
                   ('implements' IDENT (',' IDENT)*)? '{' member* '}'
    member      := ('static')? 'var' IDENT ('=' expr)? ';'
                 | ('static' | 'native' | 'synchronized')* 'def' IDENT
                   '(' params ')' (block | ';')
    stmt        := 'var' IDENT '=' expr ';'
                 | 'if' '(' expr ')' block ('else' (block | ifstmt))?
                 | 'while' '(' expr ')' block
                 | 'for' '(' simple? ';' expr? ';' simple? ')' block
                 | 'synchronized' '(' expr ')' block
                 | 'return' expr? ';' | 'break' ';' | 'continue' ';'
                 | simple ';'
    simple      := target ('=' | '+=' | ...) expr | expr
    expr        := precedence-climbing over || && | ^ & == != < <= > >=
                   << >> + - * / % with unary - ! ~ and postfix
                   .name, .name(args), [index], (args), instanceof
    primary     := literal | 'this' | 'null' | 'true' | 'false' | IDENT
                 | '(' expr ')' | 'new' ...
                 | 'fun' '(' params ')' (block | expr)
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast_nodes as A
from repro.lang.lexer import Token, tokenize

BUILTINS = frozenset({
    "cas", "atomicGet", "atomicAdd", "park", "unpark",
    "wait", "notify", "notifyAll", "len", "cast", "i2d", "d2i",
})

_BUILTIN_ARITY = {
    "cas": 3, "atomicGet": 1, "atomicAdd": 2, "park": 0, "unpark": 1,
    "wait": 1, "notify": 1, "notifyAll": 1, "len": 1, "cast": 2,
    "i2d": 1, "d2i": 1,
}

_ARRAY_KINDS = frozenset({"int", "double", "ref"})

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}

# Binary precedence, low to high.  ('&&', '||') handled separately for
# short-circuiting.
_PRECEDENCE = [
    ("|",), ("^",), ("&",),
    ("==", "!="), ("<", "<=", ">", ">="),
    ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
]


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def error(self, message: str) -> ParseError:
        tok = self.cur
        return ParseError(f"{message} (got {tok.kind} {tok.value!r})",
                          tok.line, tok.col)

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, value: object = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind: str, value: object = None) -> Token | None:
        if self.at(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            want = value if value is not None else kind
            raise self.error(f"expected {want!r}")
        return tok

    def expect_ident(self) -> str:
        return self.expect("ident").value

    # ------------------------------------------------------------------
    # Declarations.
    # ------------------------------------------------------------------
    def parse_program(self) -> list[A.ClassDecl]:
        decls = []
        while not self.at("eof"):
            decls.append(self.parse_class())
        return decls

    def parse_class(self) -> A.ClassDecl:
        line = self.cur.line
        is_interface = bool(self.accept("kw", "interface"))
        if not is_interface:
            self.expect("kw", "class")
        name = self.expect_ident()
        super_name = "Object"
        interfaces: list[str] = []
        if self.accept("kw", "extends"):
            super_name = self.expect_ident()
        if self.accept("kw", "implements"):
            interfaces.append(self.expect_ident())
            while self.accept("op", ","):
                interfaces.append(self.expect_ident())
        self.expect("op", "{")
        fields: list[A.FieldDecl] = []
        methods: list[A.MethodDecl] = []
        while not self.accept("op", "}"):
            self.parse_member(fields, methods, is_interface)
        return A.ClassDecl(name, super_name, interfaces, is_interface,
                           fields, methods, line)

    def parse_member(self, fields, methods, is_interface: bool) -> None:
        line = self.cur.line
        static = native = synchronized = False
        while True:
            if self.accept("kw", "static"):
                static = True
            elif self.accept("kw", "native"):
                native = True
            elif self.accept("kw", "synchronized"):
                synchronized = True
            else:
                break
        if self.accept("kw", "var"):
            name = self.expect_ident()
            init = None
            if self.accept("op", "="):
                init = self.parse_expr()
            self.expect("op", ";")
            if init is not None and not static:
                raise ParseError(
                    "instance-field initializers are not supported; "
                    "initialize in the constructor", line, 0)
            fields.append(A.FieldDecl(name, static, init, line))
            return
        self.expect("kw", "def")
        name = self.expect_ident()
        self.expect("op", "(")
        params: list[str] = []
        if not self.at("op", ")"):
            params.append(self.expect_ident())
            while self.accept("op", ","):
                params.append(self.expect_ident())
        self.expect("op", ")")
        if native or is_interface:
            self.expect("op", ";")
            body = None
        else:
            body = self.parse_block()
        end_line = self.tokens[self.pos - 1].line
        methods.append(A.MethodDecl(name, params, body, static, native,
                                    synchronized, line, end_line))

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def parse_block(self) -> list[A.Stmt]:
        self.expect("op", "{")
        stmts: list[A.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> A.Stmt:
        line = self.cur.line
        if self.at("kw", "var"):
            self.advance()
            name = self.expect_ident()
            self.expect("op", "=")
            init = self.parse_expr()
            self.expect("op", ";")
            return A.VarDecl(name, init, line)
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "while"):
            self.advance()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            body = self.parse_block()
            return A.While(cond, body, line)
        if self.at("kw", "for"):
            return self.parse_for()
        if self.at("kw", "synchronized"):
            self.advance()
            self.expect("op", "(")
            lock = self.parse_expr()
            self.expect("op", ")")
            body = self.parse_block()
            return A.Synchronized(lock, body, line)
        if self.accept("kw", "return"):
            value = None
            if not self.at("op", ";"):
                value = self.parse_expr()
            self.expect("op", ";")
            return A.Return(value, line)
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return A.Break(line)
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return A.Continue(line)
        stmt = self.parse_simple()
        self.expect("op", ";")
        return stmt

    def parse_if(self) -> A.If:
        line = self.cur.line
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: list[A.Stmt] = []
        if self.accept("kw", "else"):
            if self.at("kw", "if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return A.If(cond, then_body, else_body, line)

    def parse_for(self) -> A.For:
        line = self.cur.line
        self.expect("kw", "for")
        self.expect("op", "(")
        init: A.Stmt | None = None
        if not self.at("op", ";"):
            if self.accept("kw", "var"):
                name = self.expect_ident()
                self.expect("op", "=")
                init = A.VarDecl(name, self.parse_expr(), line)
            else:
                init = self.parse_simple()
        self.expect("op", ";")
        cond = None
        if not self.at("op", ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step: A.Stmt | None = None
        if not self.at("op", ")"):
            step = self.parse_simple()
        self.expect("op", ")")
        body = self.parse_block()
        return A.For(init, cond, step, body, line)

    def parse_simple(self) -> A.Stmt:
        """An assignment or a bare expression (no trailing semicolon)."""
        line = self.cur.line
        expr = self.parse_expr()
        if self.at("op", "="):
            self.advance()
            value = self.parse_expr()
            self._check_target(expr)
            return A.Assign(expr, value, line)
        for compound, base_op in _COMPOUND_OPS.items():
            if self.at("op", compound):
                self.advance()
                value = self.parse_expr()
                self._check_target(expr)
                return A.Assign(expr, A.Binary(base_op, expr, value, line), line)
        return A.ExprStmt(expr, line)

    def _check_target(self, expr: A.Expr) -> None:
        if not isinstance(expr, (A.Name, A.FieldAccess, A.StaticAccess, A.Index)):
            raise self.error("invalid assignment target")

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        lhs = self._parse_and()
        while self.at("op", "||"):
            line = self.advance().line
            rhs = self._parse_and()
            lhs = A.ShortCircuit("||", lhs, rhs, line)
        return lhs

    def _parse_and(self) -> A.Expr:
        lhs = self._parse_binary(0)
        while self.at("op", "&&"):
            line = self.advance().line
            rhs = self._parse_binary(0)
            lhs = A.ShortCircuit("&&", lhs, rhs, line)
        return lhs

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        ops = _PRECEDENCE[level]
        lhs = self._parse_binary(level + 1)
        while True:
            if self.at("kw", "instanceof") and level == 4:
                line = self.advance().line
                lhs = A.InstanceOf(lhs, self.expect_ident(), line)
                continue
            tok = self.cur
            if tok.kind == "op" and tok.value in ops:
                self.advance()
                rhs = self._parse_binary(level + 1)
                lhs = A.Binary(tok.value, lhs, rhs, tok.line)
            else:
                return lhs

    def _parse_unary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "op" and tok.value in ("-", "!", "~"):
            self.advance()
            return A.Unary(tok.value, self._parse_unary(), tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            if self.accept("op", "."):
                name = self.expect_ident()
                if self.at("op", "("):
                    args = self._parse_args()
                    expr = A.Call(A.FieldAccess(expr, name, self.cur.line),
                                  args, self.cur.line)
                else:
                    expr = A.FieldAccess(expr, name, self.cur.line)
            elif self.at("op", "["):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = A.Index(expr, index, self.cur.line)
            elif self.at("op", "("):
                args = self._parse_args()
                expr = A.Call(expr, args, self.cur.line)
            else:
                return expr

    def _parse_args(self) -> list[A.Expr]:
        self.expect("op", "(")
        args: list[A.Expr] = []
        if not self.at("op", ")"):
            args.append(self.parse_expr())
            while self.accept("op", ","):
                args.append(self.parse_expr())
        self.expect("op", ")")
        return args

    def _parse_primary(self) -> A.Expr:
        tok = self.cur
        if tok.kind in ("int", "float", "str"):
            self.advance()
            return A.Literal(tok.value, tok.line)
        if tok.kind == "kw":
            if tok.value == "null":
                self.advance()
                return A.Literal(None, tok.line)
            if tok.value == "true":
                self.advance()
                return A.Literal(1, tok.line)
            if tok.value == "false":
                self.advance()
                return A.Literal(0, tok.line)
            if tok.value == "this":
                self.advance()
                return A.This(tok.line)
            if tok.value == "new":
                return self._parse_new()
            if tok.value == "fun":
                return self._parse_lambda()
            raise self.error("unexpected keyword in expression")
        if tok.kind == "ident":
            self.advance()
            return A.Name(tok.value, tok.line)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error("expected expression")

    def _parse_new(self) -> A.Expr:
        line = self.expect("kw", "new").line
        name = self.expect_ident()
        if name in _ARRAY_KINDS and self.at("op", "["):
            self.advance()
            length = self.parse_expr()
            self.expect("op", "]")
            return A.NewArray(name, length, line)
        args = self._parse_args()
        return A.New(name, args, line)

    def _parse_lambda(self) -> A.Lambda:
        line = self.expect("kw", "fun").line
        self.expect("op", "(")
        params: list[str] = []
        if not self.at("op", ")"):
            params.append(self.expect_ident())
            while self.accept("op", ","):
                params.append(self.expect_ident())
        self.expect("op", ")")
        if self.at("op", "{"):
            body = self.parse_block()
        else:
            value = self.parse_expr()
            body = [A.Return(value, line)]
        return A.Lambda(params, body, line)


def parse(source: str) -> list[A.ClassDecl]:
    """Parse JL ``source`` into a list of class declarations."""
    return Parser(tokenize(source)).parse_program()
