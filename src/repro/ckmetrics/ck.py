"""Chidamber–Kemerer metrics over loaded guest classes.

The paper computes six CK metrics with ckjm over the classes each
benchmark loads (via a JVMTI agent).  Here the guest class model carries
everything statically — the codegen records per-method called-method and
accessed-field sets — and the VM marks classes loaded during execution,
so ``ck_for_classes(vm.pool.loaded_classes())`` is the agent+ckjm
equivalent.

Metrics (Section 7.1): WMC (methods per class), DIT (inheritance depth),
NOC (immediate subclasses), CBO (coupled classes), RFC (methods +
directly-called methods), LCOM (method pairs sharing no field, minus
pairs sharing one, floored at zero).
"""

from __future__ import annotations

from itertools import combinations

CK_METRIC_NAMES = ("WMC", "DIT", "CBO", "NOC", "RFC", "LCOM")


def ck_for_class(jclass, loaded_names: set[str] | None = None) -> dict:
    """The six CK metrics for one class."""
    methods = [m for m in jclass.methods.values()]
    wmc = len(methods)
    dit = jclass.depth
    noc = len(jclass.subclasses if loaded_names is None
              else [s for s in jclass.subclasses if s in loaded_names])

    coupled: set[str] = set(getattr(jclass, "referenced", ()) or ())
    response: set[tuple] = set()
    for method in methods:
        response.add((jclass.name, method.name))
        for owner, name in method.called:
            response.add((owner or "?", name))
            if owner and owner != jclass.name:
                coupled.add(owner)
        for owner, field in method.accessed_fields:
            if owner and owner != jclass.name:
                coupled.add(owner)
    coupled.discard(jclass.name)
    coupled.discard("Object")
    cbo = len(coupled)
    rfc = len(response)

    own_fields = set(jclass.fields)
    per_method_fields = []
    for method in methods:
        used = {field for owner, field in method.accessed_fields
                if (owner in (None, jclass.name)) and field in own_fields}
        per_method_fields.append(used)
    p = q = 0
    for a, b in combinations(per_method_fields, 2):
        if a and b and a & b:
            q += 1
        else:
            p += 1
    lcom = max(0, p - q)

    return {"WMC": wmc, "DIT": dit, "CBO": cbo, "NOC": noc,
            "RFC": rfc, "LCOM": lcom}


def ck_for_classes(classes) -> dict:
    """Sum and average of each CK metric across ``classes``."""
    loaded = {c.name for c in classes}
    sums = {name: 0 for name in CK_METRIC_NAMES}
    for jclass in classes:
        metrics = ck_for_class(jclass, loaded)
        for name in CK_METRIC_NAMES:
            sums[name] += metrics[name]
    count = max(1, len(classes))
    avgs = {name: sums[name] / count for name in CK_METRIC_NAMES}
    return {"sum": sums, "avg": avgs, "classes": len(classes)}


def suite_ck_summary(per_benchmark: list[dict]) -> dict:
    """Min/max/geomean of sums and averages across a suite (Table 4)."""
    from repro.harness.stats import geomean

    out = {}
    for kind in ("sum", "avg"):
        out[kind] = {}
        for name in CK_METRIC_NAMES:
            values = [entry[kind][name] for entry in per_benchmark]
            out[kind][name] = {
                "min": min(values),
                "max": max(values),
                "geomean": geomean([v if v > 0 else 1 for v in values]),
            }
    return out
