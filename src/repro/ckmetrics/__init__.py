"""Chidamber–Kemerer software-complexity metrics (paper Section 7.1)."""

from repro.ckmetrics.ck import CK_METRIC_NAMES, ck_for_class, ck_for_classes, suite_ck_summary

__all__ = ["CK_METRIC_NAMES", "ck_for_class", "ck_for_classes",
           "suite_ck_summary"]
