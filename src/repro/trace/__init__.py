"""repro.trace — JFR-style deterministic flight recorder & profiler.

The observability subsystem of the simulated JVM: a bounded ring buffer
of typed, timestamped events (:mod:`repro.trace.recorder`), a sampling
call-stack profiler driven by the simulated clock
(:mod:`repro.trace.sampler`), timeline/flamegraph/summary exporters
(:mod:`repro.trace.export`) and the harness plugin that carries them
through (possibly sharded) suite sweeps (:mod:`repro.trace.plugin`).

Quick use::

    from repro.runtime import VM
    vm = VM(trace=True)                       # or VM(trace=TraceConfig(...))
    ...
    rec = vm.trace.recording(benchmark="x")   # plain-dict recording
    from repro.trace.export import write_recording
    write_recording("out/", rec)              # .trace.json/.collapsed.txt/...

or end to end: ``python -m repro.trace renaissance:philosophers --out t/``.
"""

from repro.trace.export import (
    chrome_trace,
    collapsed_output,
    summary,
    validate_chrome_trace,
    write_recording,
)
from repro.trace.plugin import TracePlugin
from repro.trace.recorder import CATEGORIES, FlightRecorder, TraceConfig
from repro.trace.sampler import Sampler

__all__ = [
    "CATEGORIES",
    "FlightRecorder",
    "Sampler",
    "TraceConfig",
    "TracePlugin",
    "chrome_trace",
    "collapsed_output",
    "summary",
    "validate_chrome_trace",
    "write_recording",
]
