"""Sampling call-stack profiler driven by the simulated clock.

Real sampling profilers interrupt threads on a wall-clock timer; ours
fires at deterministic simulated-cycle boundaries instead: whenever the
scheduler clock crosses a multiple of ``interval`` cycles, every live
guest thread's frame stack is walked and aggregated.  Because the clock
and the frame stacks are pure functions of the schedule seed, the
profile is reproducible — the reference and threaded engines produce
identical samples for the same seed, which is asserted by
``tests/test_trace.py``.

Samples aggregate two ways (both available on the live :class:`Sampler`
and, via the module-level functions, on serialized recordings):

- **collapsed stacks** (:func:`collapsed_lines`): Brendan-Gregg
  ``thread;Outer.m;Inner.m count`` lines, the input format of
  ``flamegraph.pl`` / speedscope,
- **inverted call tree** (:func:`inverted_tree`): leaf-first
  aggregation answering "which methods are on-cpu, called from where" —
  the shape of a JFR "hot methods" view.

Blocked/waiting threads are sampled too (their stacks show *where* they
block), with the thread state recorded alongside — a contention profile
falls out of filtering on state.

A stack key is ``(thread_name, state, frame0, ..., frameN)`` with
frames outermost first.
"""

from __future__ import annotations


def frame_name(frame) -> str:
    """Qualified method name of an interpreter or machine frame."""
    method = getattr(frame, "method", None)
    if method is not None:
        qualified = getattr(method, "qualified", None)
        if qualified is not None:
            return qualified
    code = getattr(frame, "code", None)
    method = getattr(code, "method", None)
    if method is not None and getattr(method, "qualified", None):
        return method.qualified
    return type(frame).__name__


# ----------------------------------------------------------------------
# Aggregations over a {stack_key: count} mapping.
# ----------------------------------------------------------------------
def collapsed_lines(stacks: dict) -> list[str]:
    """``thread;Frame;Frame count`` lines, sorted (deterministic)."""
    lines = []
    for key, count in stacks.items():
        key = tuple(key)
        lines.append(";".join((key[0],) + key[2:]) + f" {count}")
    return sorted(lines)


def inverted_tree(stacks: dict) -> dict:
    """Leaf-first call tree: method -> {count, callers: {...}}."""
    root: dict = {}
    for key, count in stacks.items():
        key = tuple(key)
        node = root
        for frame in reversed(key[2:]):         # leaf outward
            entry = node.get(frame)
            if entry is None:
                entry = node[frame] = {"count": 0, "callers": {}}
            entry["count"] += count
            node = entry["callers"]
    return root


def top_methods(stacks: dict, limit: int = 20) -> list[dict]:
    """Methods by self (leaf) samples, ties broken by name."""
    self_counts: dict[str, int] = {}
    total_counts: dict[str, int] = {}
    for key, count in stacks.items():
        frames = tuple(key)[2:]
        if not frames:
            continue
        self_counts[frames[-1]] = self_counts.get(frames[-1], 0) + count
        for frame in set(frames):
            total_counts[frame] = total_counts.get(frame, 0) + count
    ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        {"method": method, "self": self_count, "total": total_counts[method]}
        for method, self_count in ranked[:limit]
    ]


class Sampler:
    """Aggregates periodic stack samples of every guest thread."""

    def __init__(self, interval: int, *, counters=None) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.interval = interval
        self.samples = 0                  # per-thread stack samples taken
        self.sample_points = 0            # clock crossings serviced
        self.stacks: dict[tuple, int] = {}
        self._next = interval
        self._counters = counters

    # ------------------------------------------------------------------
    def on_clock(self, scheduler) -> None:
        """Take all sample points the last clock advance crossed."""
        clock = scheduler.clock
        while clock >= self._next:
            self._next += self.interval
            self.sample_points += 1
            self._take(scheduler)

    def _take(self, scheduler) -> None:
        counters = self._counters
        stacks = self.stacks
        for thread in scheduler.threads:
            frames = thread.frames
            if not frames:
                continue
            key = (thread.name, thread.state) + tuple(
                frame_name(f) for f in frames)
            stacks[key] = stacks.get(key, 0) + 1
            self.samples += 1
            if counters is not None:
                counters.trace_samples += 1

    # ------------------------------------------------------------------
    def collapsed(self) -> list[str]:
        return collapsed_lines(self.stacks)

    def inverted_tree(self) -> dict:
        return inverted_tree(self.stacks)

    def top_methods(self, limit: int = 20) -> list[dict]:
        return top_methods(self.stacks, limit)

    def summary(self) -> dict:
        """JSON-serializable sampler state (rides in the recording)."""
        return {
            "interval": self.interval,
            "sample_points": self.sample_points,
            "samples": self.samples,
            "stacks": [[list(key), count]
                       for key, count in sorted(self.stacks.items())],
        }
