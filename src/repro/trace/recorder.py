"""The flight recorder: a bounded ring buffer of typed, timestamped events.

A :class:`FlightRecorder` is the reproduction's analogue of Java Flight
Recorder: a per-VM, always-deterministic event stream of the things the
aggregate counters cannot show — *when* threads spawn and block, which
monitors are contended, where CAS operations fail, when the JIT
compiles and deoptimizes, and (sampled) where allocations happen.
Timestamps are the scheduler's simulated clock, so for a fixed seed the
stream is a pure function of the program: the reference and threaded
engines produce byte-identical recordings, and a sharded suite sweep
merges back to the serial recording (``tests/test_trace.py``).

Event shape
-----------
Every event is a plain tuple ``(seq, ts, category, name, tid, args)``:

- ``seq``   — emission index (total order, also across equal ``ts``),
- ``ts``    — simulated clock at emission (slice granularity),
- ``category`` / ``name`` — taxonomy below,
- ``tid``   — scheduler-local thread id (0 = outside guest execution),
- ``args``  — a tuple of primitives (strings/ints only).

Taxonomy (category → names):

- ``thread``  — ``spawn`` (name, parent_tid), ``terminate`` (),
  ``kill`` (reason)
- ``monitor`` — ``contended`` (tag, owner_tid), ``acquired`` (tag),
  ``wait`` (tag), ``notify`` (tag, moved, all)
- ``park``    — ``park`` (), ``unpark`` (target_tid, was_parked)
- ``cas``     — ``fail`` (field)
- ``jit``     — ``compile`` (method, ok), ``deopt`` (method)
- ``fault``   — one name per injected fault kind
  (site, occurrence, thread_name, detail)
- ``alloc``   — ``object`` (class, words), ``array`` (kind, words),
  sampled every :attr:`TraceConfig.alloc_sample_rate` allocations

Overhead budget
---------------
With no recorder attached every hook site is a single ``is None`` check
(gated at ≤2% by ``make bench-check``); per-category flags are folded
into the hook sites (the threaded engine binds them at translation
time), so a disabled category costs nothing on its fast path.  The ring
buffer bounds memory: past ``capacity`` events the oldest are dropped
and counted (``dropped``, also exported via
``Counters.trace_dropped``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VMError

#: Every recordable category, in stable export order.
CATEGORIES = ("thread", "monitor", "park", "cas", "jit", "fault", "alloc")

#: Recording schema tag (bump on incompatible event-shape changes).
SCHEMA = "repro.trace/1"


@dataclass(frozen=True)
class TraceConfig:
    """Declarative recorder configuration (picklable, shard-safe)."""

    #: Enabled event categories (any iterable of :data:`CATEGORIES`).
    categories: tuple = CATEGORIES
    #: Ring-buffer capacity in events; the oldest events are dropped
    #: (and counted) once the buffer is full.
    capacity: int = 65536
    #: Emit one ``alloc`` event every N allocations (0 disables even
    #: when the ``alloc`` category is on).
    alloc_sample_rate: int = 64
    #: Call-stack sample period in simulated cycles (0 = no sampler).
    sample_interval: int = 10_000

    def __post_init__(self) -> None:
        bad = set(self.categories) - set(CATEGORIES)
        if bad:
            raise VMError(
                f"unknown trace categories {sorted(bad)}; have {CATEGORIES}")
        if self.capacity < 1:
            raise VMError("trace capacity must be >= 1")


class FlightRecorder:
    """One VM's bounded, deterministic event recording."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        enabled = frozenset(self.config.categories)
        # Per-category flags, read directly by the hook sites.
        self.thread_on = "thread" in enabled
        self.monitor_on = "monitor" in enabled
        self.park_on = "park" in enabled
        self.cas_on = "cas" in enabled
        self.jit_on = "jit" in enabled
        self.fault_on = "fault" in enabled
        self.alloc_on = "alloc" in enabled and self.config.alloc_sample_rate > 0
        self.events: list = []
        self.dropped = 0
        self.emitted = 0
        self.thread_names: dict[int, str] = {}
        self.sampler = None
        self._seq = 0
        self._head = 0              # ring start within self.events
        self._alloc_seen = 0
        self._sched = None
        self._counters = None
        self._vm = None

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def attach(self, vm) -> "FlightRecorder":
        """Install this recorder into ``vm`` (idempotent per VM)."""
        if self._vm is not None and self._vm is not vm:
            raise VMError("a FlightRecorder records exactly one VM")
        self._vm = vm
        self._sched = vm.scheduler
        self._counters = vm.counters
        vm.trace = self
        vm.scheduler.trace = self
        if self.alloc_on:
            vm.heap.trace = self
        if self.config.sample_interval > 0:
            from repro.trace.sampler import Sampler

            self.sampler = Sampler(self.config.sample_interval,
                                   counters=vm.counters)
        # The threaded engine binds trace state into its handler
        # closures at translation time; drop stale translations (same
        # contract as attaching a race sanitizer).
        hook = getattr(vm.interpreter, "on_trace_attached", None)
        if hook is not None:
            hook()
        return self

    # ------------------------------------------------------------------
    # The hot path.
    # ------------------------------------------------------------------
    def emit(self, category: str, name: str, tid: int, args: tuple = ()) -> None:
        """Append one event (timestamped with the simulated clock)."""
        seq = self._seq
        self._seq = seq + 1
        self.emitted += 1
        counters = self._counters
        if counters is not None:
            counters.trace_events += 1
        events = self.events
        events.append((seq, self._sched.clock, category, name, tid, args))
        if len(events) - self._head > self.config.capacity:
            # Lazy ring: advance the head, compact occasionally so the
            # backing list stays O(capacity).
            self._head += 1
            self.dropped += 1
            if counters is not None:
                counters.trace_dropped += 1
            if self._head >= self.config.capacity:
                del events[:self._head]
                self._head = 0
        if category == "thread" and name == "spawn":
            self.thread_names[tid] = args[0]

    def on_slice_end(self, scheduler) -> None:
        """Scheduler callback after every clock advance (drives sampling)."""
        if self.sampler is not None:
            self.sampler.on_clock(scheduler)

    def on_alloc(self, what: str, detail: str, words: int) -> None:
        """Heap callback for every allocation; emits every Nth one."""
        self._alloc_seen += 1
        if self._alloc_seen % self.config.alloc_sample_rate:
            return
        current = self._sched.current
        self.emit("alloc", what, current.tid if current is not None else 0,
                  (detail, words))

    def current_tid(self) -> int:
        """Scheduler-local id of the thread now executing (0 if none)."""
        current = self._sched.current if self._sched is not None else None
        return current.tid if current is not None else 0

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------
    def event_list(self) -> list:
        """The retained events, oldest first (the ring's live window)."""
        return self.events[self._head:]

    def recording(self, *, benchmark: str = "?", config: str = "?") -> dict:
        """A plain-dict, JSON-serializable snapshot of the recording.

        Everything inside is deterministic for a fixed seed; two
        recordings are byte-identical iff their ``json.dumps`` agree.
        """
        sampler = self.sampler
        return {
            "schema": SCHEMA,
            "benchmark": benchmark,
            "config": config,
            "clock": self._sched.clock if self._sched is not None else 0,
            "categories": sorted(self.config.categories),
            "thread_names": {str(tid): name for tid, name
                             in sorted(self.thread_names.items())},
            "events": [list(e[:5]) + [list(e[5])] for e in self.event_list()],
            "emitted": self.emitted,
            "dropped": self.dropped,
            "samples": sampler.summary() if sampler is not None else None,
        }
