"""Command-line flight recording: ``python -m repro.trace``.

Records one benchmark (``suite:name`` or a bare name) or a whole suite
and writes, per recorded run, the artifact triple into ``--out``:

- ``<bench>.trace.json``     — Chrome ``trace_event`` timeline
  (open in ``chrome://tracing`` or https://ui.perfetto.dev),
- ``<bench>.collapsed.txt``  — collapsed stacks for ``flamegraph.pl``,
- ``<bench>.summary.json``   — top methods, hot monitors, event counts.

Examples::

    python -m repro.trace renaissance:philosophers --out /tmp/t
    python -m repro.trace scrabble --out /tmp/t --categories monitor,thread
    python -m repro.trace renaissance --out /tmp/t --jobs 4   # whole suite

Every written Chrome trace is schema-validated first (``make trace``
relies on this as its tier-2 check).  Recording is deterministic: same
spec + seed ⇒ byte-identical artifacts, serial or sharded.
"""

from __future__ import annotations

import argparse
import sys


def _parse_categories(spec: str | None):
    from repro.trace.recorder import CATEGORIES

    if spec is None:
        return CATEGORIES
    if spec in ("", "none"):
        return ()
    return tuple(part.strip() for part in spec.split(",") if part.strip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Flight-record a benchmark or suite and export "
                    "timeline/flamegraph/summary artifacts")
    parser.add_argument("spec",
                        help='"suite:benchmark", a benchmark name, or a '
                             "suite name (records every benchmark)")
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument("--categories", default=None,
                        help="comma list of event categories "
                             "(default: all; 'none' disables events)")
    parser.add_argument("--capacity", type=int, default=65536,
                        help="ring-buffer capacity in events")
    parser.add_argument("--sample-interval", type=int, default=10_000,
                        help="profiler sample period in cycles (0 = off)")
    parser.add_argument("--alloc-rate", type=int, default=64,
                        help="emit every Nth allocation (0 = off)")
    parser.add_argument("--jit", default="graal",
                        help='"graal", "c2" or "none"')
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--measure", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for suite specs")
    args = parser.parse_args(argv)

    from repro.errors import ReproError
    from repro.suites.registry import SUITES, get_benchmark
    from repro.trace.export import write_recording
    from repro.trace.plugin import TracePlugin
    from repro.trace.recorder import TraceConfig

    config = TraceConfig(
        categories=_parse_categories(args.categories),
        capacity=args.capacity,
        alloc_sample_rate=args.alloc_rate,
        sample_interval=args.sample_interval,
    )
    jit = None if args.jit in ("none", "None") else args.jit
    plugin = TracePlugin(config)

    if args.spec in SUITES:
        from repro.faults.resilience import run_suite

        suite = run_suite(
            args.spec, jobs=args.jobs, jit=jit, cores=args.cores,
            schedule_seed=args.seed, warmup=args.warmup,
            measure=args.measure, plugins=(plugin,))
        failures = len(suite.failures)
    else:
        suite_name = None
        name = args.spec
        if ":" in name:
            suite_name, _, name = name.partition(":")
        try:
            bench = get_benchmark(name, suite=suite_name)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from repro.harness.core import Runner

        Runner(bench, jit=jit, cores=args.cores, schedule_seed=args.seed,
               plugins=(plugin,)).run(warmup=args.warmup,
                                      measure=args.measure)
        failures = 0

    for recording in plugin.recordings:
        paths = write_recording(args.out, recording)
        events = recording["emitted"]
        samples = (recording.get("samples") or {}).get("samples", 0)
        tag = f" [FAILED: {recording['failed']}]" \
            if recording.get("failed") else ""
        print(f"{recording['benchmark']:24s} {events:8d} events "
              f"{samples:7d} samples -> {paths['trace']}{tag}")
    if not plugin.recordings:
        print("nothing recorded", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
