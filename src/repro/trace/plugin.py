"""`TracePlugin`: flight recording as a harness measurement plugin.

The paper's harness "provides an interface for custom measurement
plugins, which can latch onto benchmark execution events" — this is
that interface carrying the flight recorder.  One recorder is attached
per :class:`~repro.runtime.vm.VM` in ``before_run`` (covering warmup
and measurement); ``after_run`` snapshots the full recording, stores it
on the plugin and attaches the compact :func:`~repro.trace.export.summary`
digest to the :class:`~repro.harness.core.RunResult` (``result.trace``).

As a :class:`~repro.harness.plugins.MergeablePlugin`, traced suites keep
working under ``run_suite(jobs=N)``: each shard worker records its own
benchmarks, the per-run recordings ship back as snapshots, and the
parent reassembles them in serial order — the merged recording list is
byte-identical to a serial sweep's (``tests/test_trace.py``).
"""

from __future__ import annotations

from repro.harness.plugins import MergeablePlugin
from repro.trace.export import summary
from repro.trace.recorder import FlightRecorder, TraceConfig


class TracePlugin(MergeablePlugin):
    """Records every benchmark run the harness executes."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        self.recordings: list[dict] = []
        self.recorder: FlightRecorder | None = None
        self._pending: list[dict] = []      # per-run buffer for sharding

    # ------------------------------------------------------------------
    # Harness hooks.
    # ------------------------------------------------------------------
    def before_run(self, vm, benchmark) -> None:
        self.recorder = FlightRecorder(self.config).attach(vm)

    def after_run(self, vm, benchmark, result) -> None:
        recording = self.recorder.recording(
            benchmark=benchmark.name, config=result.config)
        self._keep(recording)
        result.trace = summary(recording)

    def on_fault(self, vm, benchmark, report) -> None:
        # Unrecovered failure: keep the partial recording (it shows the
        # timeline right up to the fault) tagged with the failure.
        if self.recorder is None or vm is None \
                or getattr(vm, "trace", None) is not self.recorder:
            return
        recording = self.recorder.recording(
            benchmark=benchmark.name, config=report.config)
        recording["failed"] = report.error_type
        self._keep(recording)

    def _keep(self, recording: dict) -> None:
        self.recordings.append(recording)
        self._pending.append(recording)

    # ------------------------------------------------------------------
    # Shard merge protocol.
    # ------------------------------------------------------------------
    def snapshot_run(self):
        pending, self._pending = self._pending, []
        return pending

    def absorb_run(self, payload) -> None:
        self.recordings.extend(payload or ())

    # ------------------------------------------------------------------
    @property
    def last(self) -> dict | None:
        return self.recordings[-1] if self.recordings else None
