"""Exporters: Chrome ``trace_event`` JSON, collapsed stacks, summaries.

All exporters consume the plain-dict *recording* produced by
:meth:`repro.trace.recorder.FlightRecorder.recording` (so they work on
live recorders, on shard-merged recordings, and on recordings read back
from disk) and emit deterministic artifacts:

- :func:`chrome_trace` — the Chrome/Perfetto ``trace_event`` format
  (``chrome://tracing``, https://ui.perfetto.dev): one track per guest
  thread, contention/wait/park intervals as complete (``X``) events,
  everything else as instants.  Simulated cycles map to microseconds.
- :func:`collapsed_output` — Brendan-Gregg collapsed stacks
  (``thread;Frame;Frame count``), the input of ``flamegraph.pl``.
- :func:`summary` — a compact JSON digest (top methods, contended
  monitors with total blocked cycles, per-kind event counts) that
  :class:`~repro.trace.plugin.TracePlugin` attaches to Runner results.

:func:`validate_chrome_trace` is the schema check used by the tests and
by ``make trace`` — it returns a list of problems (empty = valid)
instead of raising, so callers can report all violations at once.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.trace.sampler import collapsed_lines, inverted_tree, top_methods

_PID = 1

#: Event phases the exporter produces (validated by the schema check).
_PHASES = frozenset({"M", "X", "i"})


def _stacks_of(recording: dict) -> dict:
    samples = recording.get("samples") or {}
    return {tuple(key): count for key, count in samples.get("stacks", ())}


# ----------------------------------------------------------------------
# Span pairing.
# ----------------------------------------------------------------------
def _spans(events) -> tuple[list, list]:
    """Pair begin/end events into intervals.

    Returns ``(blocked, instants)``: ``blocked`` holds
    ``(kind, tid, tag, start, end)`` for monitor contention
    (``contended`` → ``acquired``), wait (``wait`` → ``acquired``) and
    park (``park`` → matching ``unpark``); ``instants`` holds every
    event not consumed as a span boundary.
    """
    blocked: list = []
    instants: list = []
    pending_monitor: dict[int, tuple] = {}   # tid -> (kind, tag, start)
    pending_park: dict[int, int] = {}        # tid -> start ts
    for event in events:
        _seq, ts, cat, name, tid, args = event
        if cat == "monitor" and name in ("contended", "wait"):
            pending_monitor[tid] = (name, args[0], ts)
            instants.append(event)
        elif cat == "monitor" and name == "acquired":
            start = pending_monitor.pop(tid, None)
            if start is not None:
                blocked.append((start[0], tid, start[1], start[2], ts))
            else:
                instants.append(event)
        elif cat == "park" and name == "park":
            pending_park[tid] = ts
        elif cat == "park" and name == "unpark":
            target, was_parked = args[0], args[1]
            start = pending_park.pop(target, None) if was_parked else None
            if start is not None:
                blocked.append(("park", target, "park", start, ts))
            instants.append(event)
        else:
            instants.append(event)
    return blocked, instants


# ----------------------------------------------------------------------
# Chrome trace_event JSON.
# ----------------------------------------------------------------------
def chrome_trace(recording: dict) -> dict:
    """Convert a recording into a Chrome ``trace_event`` document."""
    out: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
        "args": {"name": f"repro-vm {recording.get('benchmark', '?')}"},
    }]
    for tid, name in recording.get("thread_names", {}).items():
        out.append({
            "ph": "M", "name": "thread_name", "pid": _PID, "tid": int(tid),
            "args": {"name": f"{name}#{tid}"},
        })

    events = [tuple(e[:5]) + (tuple(e[5]),) for e in recording["events"]]
    blocked, instants = _spans(events)
    for kind, tid, tag, start, end in blocked:
        out.append({
            "ph": "X", "name": f"{kind} {tag}", "cat": "monitor"
            if kind != "park" else "park",
            "ts": start, "dur": end - start, "pid": _PID, "tid": tid,
        })
    for _seq, ts, cat, name, tid, args in instants:
        out.append({
            "ph": "i", "s": "t", "name": f"{cat}:{name}", "cat": cat,
            "ts": ts, "pid": _PID, "tid": tid,
            "args": {"detail": [str(a) for a in args]},
        })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": recording.get("schema"),
            "benchmark": recording.get("benchmark"),
            "config": recording.get("config"),
            "clock": recording.get("clock"),
            "dropped": recording.get("dropped"),
        },
    }


def validate_chrome_trace(doc) -> list[str]:
    """Schema-check a ``trace_event`` document; returns problems found."""
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return ["document must be a dict with a traceEvents list"]
    for i, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: metadata without args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant without scope")
    return problems


# ----------------------------------------------------------------------
# Collapsed stacks and the summary digest.
# ----------------------------------------------------------------------
def collapsed_output(recording: dict) -> str:
    """Flamegraph-ready collapsed stacks, one per line."""
    lines = collapsed_lines(_stacks_of(recording))
    return "\n".join(lines) + ("\n" if lines else "")


def summary(recording: dict) -> dict:
    """Compact digest: top methods, hot monitors, event counts."""
    events = [tuple(e[:5]) + (tuple(e[5]),) for e in recording["events"]]
    blocked, _instants = _spans(events)
    monitors: dict[str, dict] = {}
    for kind, _tid, tag, start, end in blocked:
        if kind == "park":
            continue
        entry = monitors.setdefault(
            tag, {"monitor": tag, "contended": 0, "waits": 0,
                  "blocked_cycles": 0})
        entry["contended" if kind == "contended" else "waits"] += 1
        entry["blocked_cycles"] += end - start
    event_counts: dict[str, int] = {}
    for _seq, _ts, cat, name, _tid, _args in events:
        key = f"{cat}.{name}"
        event_counts[key] = event_counts.get(key, 0) + 1
    stacks = _stacks_of(recording)
    samples = recording.get("samples") or {}
    return {
        "schema": "repro.trace.summary/1",
        "benchmark": recording.get("benchmark"),
        "config": recording.get("config"),
        "clock": recording.get("clock"),
        "events": {
            "emitted": recording.get("emitted", 0),
            "dropped": recording.get("dropped", 0),
            "retained": len(events),
            "counts": dict(sorted(event_counts.items())),
        },
        "threads": len(recording.get("thread_names", {})),
        "top_methods": top_methods(stacks),
        "hot_monitors": sorted(
            monitors.values(),
            key=lambda m: (-m["blocked_cycles"], m["monitor"])),
        "samples": {
            "interval": samples.get("interval", 0),
            "sample_points": samples.get("sample_points", 0),
            "samples": samples.get("samples", 0),
        },
        "inverted_tree": inverted_tree(stacks),
    }


# ----------------------------------------------------------------------
# Filesystem bundle.
# ----------------------------------------------------------------------
def write_recording(outdir, recording: dict, *, stem: str | None = None) -> dict:
    """Write the trace/collapsed/summary artifact triple for a recording.

    Returns ``{"trace": path, "collapsed": path, "summary": path}``.
    The Chrome trace is schema-checked before anything is written, so a
    malformed export fails loudly instead of producing an unloadable
    file.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    stem = stem or str(recording.get("benchmark", "recording"))
    stem = "".join(c if c.isalnum() or c in "-_." else "_" for c in stem)
    doc = chrome_trace(recording)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ReproError(
            "chrome trace failed schema check: " + "; ".join(problems[:5]))
    paths = {
        "trace": outdir / f"{stem}.trace.json",
        "collapsed": outdir / f"{stem}.collapsed.txt",
        "summary": outdir / f"{stem}.summary.json",
    }
    paths["trace"].write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n")
    paths["collapsed"].write_text(collapsed_output(recording))
    paths["summary"].write_text(
        json.dumps(summary(recording), indent=2, sort_keys=True) + "\n")
    return paths
