"""Measure one optimization's impact on one benchmark (paper Figure 5).

Disables the chosen optimization in the Graal-like pipeline and reports
the relative execution-time change and its Welch-test significance —
the paper's selective-disable methodology.

Run:  python examples/optimization_impact.py [benchmark] [OPT]
      e.g. python examples/optimization_impact.py fj-kmeans LLC
"""

import sys

from repro.analysis.impact import measure_impact
from repro.jit.pipeline import OPT_NAMES
from repro.suites.registry import get_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "future-genetic"
    code = sys.argv[2] if len(sys.argv) > 2 else "AC"
    bench = get_benchmark(name)
    print(f"benchmark   : {bench.name} — {bench.description}")
    print(f"optimization: {code} — {OPT_NAMES[code]}")
    print("measuring (3 forks, selective disable)...")

    [cell] = measure_impact(bench, [code], forks=3)
    verdict = "significant at alpha=0.01" if cell.significant \
        else "not significant"
    print(f"\nimpact: {cell.impact * 100:+.1f}% "
          f"(p={cell.p_value:.3f}, {verdict})")
    print("positive impact = disabling the optimization slows the "
          "benchmark down, i.e. the optimization helps.")


if __name__ == "__main__":
    main()
