"""Quickstart: compile a guest program and run it on the simulated JVM.

The guest language ("JL") is a small Java-like language; the VM
interprets it, profiles it, and JIT-compiles hot methods with the
Graal-like pipeline — including the paper's seven optimizations.

Run:  python examples/quickstart.py
"""

from repro.lang import compile_program
from repro.runtime import VM

SOURCE = r"""
class Main {
    static def fib(n) {
        if (n < 2) { return n; }
        return Main.fib(n - 1) + Main.fib(n - 2);
    }

    static def parallelSum(n) {
        var counter = new AtomicLong(0);
        var latch = new CountDownLatch(4);
        var w = 0;
        while (w < 4) {
            var wid = w;
            var t = new Thread(fun () {
                var acc = 0;
                var i = wid;
                while (i < n) {
                    acc = acc + i;
                    i = i + 4;
                }
                counter.getAndAdd(acc);
                latch.countDown();
            });
            t.start();
            w = w + 1;
        }
        latch.await();
        return counter.get();
    }

    static def main() {
        Sys.println("fib(16) = " + Main.fib(16));
        Sys.println("parallelSum(1000) = " + Main.parallelSum(1000));
        return 0;
    }
}
"""


def main() -> None:
    program = compile_program(SOURCE)

    # Run on the full Graal-like JIT (default).  Use jit=None for pure
    # interpretation or jit="c2" for the classic baseline compiler.
    vm = VM(jit="graal")
    vm.load(program)

    # Warm up so the JIT tiers the hot methods.
    for _ in range(6):
        vm.invoke("Main.main")

    before = vm.timing_snapshot()
    vm.invoke("Main.main")
    stats = vm.interval_stats(before)

    print("".join(vm.stdout[-2:]), end="")
    print(f"simulated wall cycles : {stats['wall']:,}")
    print(f"guest work cycles     : {stats['work']:,}")
    print(f"CPU utilization       : {stats['cpu'] * 100:.0f}%")
    print(f"compiled methods      : "
          f"{[c.method.qualified for c in vm.jit.compiled_methods]}")
    c = vm.counters
    print(f"atomics={c.atomic:,} synch={c.synch:,} park={c.park:,} "
          f"objects={c.object:,} invokedynamic={c.idynamic:,}")


if __name__ == "__main__":
    main()
