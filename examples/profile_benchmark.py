"""Profile a Renaissance benchmark's concurrency metrics (paper Table 2).

Collects the eleven characterizing metrics on the interpreter (the
analogue of the paper's DiSL-instrumented profiling runs) and prints
both raw counts and rates normalized by reference cycles.

Run:  python examples/profile_benchmark.py [benchmark-name]
"""

import sys

from repro.metrics import METRIC_NAMES, collect_metrics, normalize_metrics
from repro.suites.registry import get_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "finagle-chirper"
    bench = get_benchmark(name)
    print(f"profiling {bench.name} ({bench.suite}): {bench.description}")

    raw, cycles = collect_metrics(bench)
    normalized = normalize_metrics(raw, cycles)

    print(f"\nsteady-state reference cycles: {cycles:,}\n")
    print(f"{'metric':10s} {'raw count':>14s} {'per ref cycle':>14s}")
    for metric in METRIC_NAMES:
        if metric == "cpu":
            print(f"{metric:10s} {raw[metric]:>13.1f}% "
                  f"{normalized[metric]:>14.3f}")
        else:
            print(f"{metric:10s} {raw[metric]:>14,} "
                  f"{normalized[metric]:>14.2e}")


if __name__ == "__main__":
    main()
