"""Flight-record a benchmark and export timeline + flamegraph artifacts.

Attaches the flight recorder (repro.trace) through the harness plugin
interface, runs one benchmark, prints the hottest methods and the
most-contended monitors from the recording's summary digest, and writes
the artifact triple:

- ``<bench>.trace.json``    — Chrome ``trace_event`` timeline; open it
  in ``chrome://tracing`` or https://ui.perfetto.dev
- ``<bench>.collapsed.txt`` — collapsed stacks for ``flamegraph.pl``
  or https://speedscope.app
- ``<bench>.summary.json``  — top methods, hot monitors, event counts

Run:  python examples/trace_benchmark.py [benchmark-name] [outdir]
"""

import sys

from repro.harness import Runner
from repro.suites.registry import get_benchmark
from repro.trace import TracePlugin, write_recording


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "philosophers"
    outdir = sys.argv[2] if len(sys.argv) > 2 else "trace-out"
    bench = get_benchmark(name)
    print(f"recording {bench.name} ({bench.suite}): {bench.description}")

    plugin = TracePlugin()
    result = Runner(bench, jit="graal",
                    plugins=(plugin,)).run(warmup=1, measure=1)

    recording = plugin.last
    digest = result.trace
    print(f"\n{recording['emitted']:,} events recorded "
          f"({recording['dropped']:,} dropped), "
          f"{digest['samples']['samples']:,} stack samples\n")

    print("hot methods (self samples):")
    for row in digest["top_methods"][:8]:
        print(f"  {row['method']:40s} self {row['self']:>6,} "
              f"total {row['total']:>6,}")

    if digest["hot_monitors"]:
        print("\ncontended monitors (cycles blocked):")
        for mon in digest["hot_monitors"][:5]:
            print(f"  {mon['monitor']:40s} "
                  f"blocked {mon['blocked_cycles']:>10,} cycles "
                  f"({mon['contended']} contentions, {mon['waits']} waits)")

    paths = write_recording(outdir, recording)
    print(f"\ntimeline:   {paths['trace']}")
    print(f"flamegraph: {paths['collapsed']}")
    print(f"summary:    {paths['summary']}")


if __name__ == "__main__":
    main()
