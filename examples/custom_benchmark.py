"""Author a new benchmark against the harness API (paper Section 2.2:
"the harness ... allows to easily add new benchmarks").

Defines a producer/consumer workload in the guest language, wraps it in
a GuestBenchmark, and runs it through the JMH-style frontend with an
iteration-logging plugin attached.

Run:  python examples/custom_benchmark.py
"""

from repro.harness import GuestBenchmark, run_jmh
from repro.harness.plugins import IterationLogPlugin

SOURCE = r"""
class Bench {
    static def run(n) {
        var queue = new BlockingQueue(32);
        var done = new CountDownLatch(1);
        var consumer = new Thread(fun () {
            var acc = 0;
            var i = 0;
            while (i < n) {
                acc = (acc + queue.take()) % 1000003;
                i = i + 1;
            }
            done.countDown();
        });
        consumer.daemon = true;
        consumer.start();
        var i = 0;
        while (i < n) {
            queue.put(i * 7);
            i = i + 1;
        }
        done.await();
        return n;
    }
}
"""

BENCHMARK = GuestBenchmark(
    name="example-producer-consumer",
    suite="examples",
    source=SOURCE,
    description="bounded-queue handoff between two threads",
    focus="guarded blocks (wait/notify)",
    args=(300,),
    expected=300,
)


def main() -> None:
    log = IterationLogPlugin()
    result = run_jmh(BENCHMARK, jit="graal", forks=2, warmup=4, measure=3,
                     plugins=(log,))
    print(result.format())
    print("\nper-iteration walls (fork-major):")
    for index, warmup, wall in log.log:
        phase = "warmup " if warmup else "measure"
        print(f"  {phase} #{index}: {wall:,} cycles")


if __name__ == "__main__":
    main()
