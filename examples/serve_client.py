"""Benchmark-as-a-service walkthrough: submit a sweep, stream events,
fetch results by digest, and prove the cache by resubmitting.

Starts a service on a background thread (the same `Service` that
`python -m repro.serve` runs), submits a small sweep spec over HTTP,
tails the NDJSON event stream, decodes an outcome fetched from the
content-addressed store, then resubmits the identical spec and shows
that it executes zero units — everything is a store hit.

Run:  PYTHONPATH=src python examples/serve_client.py
"""

import tempfile

from repro.serve.testing import ServiceThread

SPEC = {
    "benchmarks": ["scrabble", "philosophers"],
    "repeat": 2,
    "jit": "none",        # interpreter only, to keep the demo quick
    "warmup": 1,
    "measure": 1,
}


def main() -> None:
    with tempfile.TemporaryDirectory() as dir:
        with ServiceThread(dir, workers=2) as service:
            client = service.client()
            print(f"service listening on 127.0.0.1:{service.port}")

            # Submit and follow the live NDJSON event stream.
            job = client.submit(SPEC)
            print(f"submitted job {job['id']}: "
                  f"{job['total_units']} units")
            for event in client.events(job["id"]):
                if event["kind"] == "stage":
                    continue            # prepare/run/collect/teardown
                fields = {k: v for k, v in event.items()
                          if k not in ("schema", "job", "seq", "kind")}
                print(f"  [{event['seq']:3d}] {event['kind']:12s} {fields}")

            # Fetch one stored outcome by digest and decode it.
            done = client.job(job["id"])
            digest = next(iter(done["unit_states"]))
            outcome = client.result(digest)
            result = outcome["result"]
            print(f"fetched {digest[:12]}…: {result.benchmark} "
                  f"({len(result.iterations)} iterations) "
                  f"fingerprint {result.fingerprint()[:12]}…")

            # Resubmit the identical spec: served entirely from the
            # store, zero new executions.
            again = client.submit(SPEC)
            client.wait(again["id"])
            m = client.metrics()
            print(f"resubmit: executed={m['serve_units_executed']:.0f} "
                  f"cached={m['serve_units_cached']:.0f} "
                  f"(identical spec -> all cache hits)")


if __name__ == "__main__":
    main()
