"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments without the ``wheel``
package (legacy editable installs go through ``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Renaissance (PLDI 2019) reproduction: a simulated JVM, a Graal-like "
        "JIT, and the full benchmark-suite analysis pipeline in pure Python"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
